// uknetdev/netdev.h - the uknetdev API (§3.1), signature-faithful.
//
// The paper's core networking API: burst-based TX/RX where the caller hands
// arrays of uk_netbufs and |cnt| doubles as in/out parameter; queues operate
// in polling mode by default with an opt-in interrupt mode per queue whose
// handler re-arms only when the queue runs dry (the interrupt-storm-avoidance
// design described at the end of §3.1). Drivers register through this
// interface and are configured entirely by the application: number of queues,
// buffer pools, offloads.
#ifndef UKNETDEV_NETDEV_H_
#define UKNETDEV_NETDEV_H_

#include <cstdint>
#include <functional>

#include "ukarch/status.h"
#include "uknetdev/netbuf.h"

namespace uknetdev {

struct MacAddr {
  std::uint8_t bytes[6] = {0};
  bool operator==(const MacAddr&) const = default;
};

// Device capabilities the application queries before configuring (the paper:
// "API interfaces for applications to provide necessary information ... so
// that the application code can specialize").
struct DevInfo {
  std::uint16_t max_rx_queues = 1;
  std::uint16_t max_tx_queues = 1;
  std::uint32_t max_mtu = 1500;
  std::uint16_t tx_queue_depth = 256;
  std::uint16_t rx_queue_depth = 256;
  // Headroom bytes the driver itself prepends on TX (e.g. virtio_net_hdr).
  // Stack layers add this to their own header budget when reserving netbuf
  // headroom so every header down to the device is built in place.
  std::uint16_t tx_headroom = 0;
};

struct DevConf {
  std::uint16_t nb_rx_queues = 1;
  std::uint16_t nb_tx_queues = 1;
};

// Per-queue RX event callback. Fired by the driver, at most once per armed
// period, when frames become available on a queue whose interrupt line is
// enabled AND armed (see RxIntrEnable below). The callback runs in whatever
// context delivered the frames — a peer's TxBurst for the loopback device,
// the simulated vhost thread (a wire-activity signal) for virtio-net — so it
// must only do wakeup-grade work: set a flag, wake a uksched::WaitQueue.
// Never call back into the device from the handler.
using RxEventFn = std::function<void(std::uint16_t queue)>;

struct RxQueueConf {
  NetBufPool* buffer_pool = nullptr;  // driver refills the RX ring from here
  // Optional wakeup hook for interrupt mode; unused (and free) while the
  // queue stays in the default polling mode. uknet's NetIf installs a handler
  // that wakes the per-queue wait state behind NetStack::PollWait.
  RxEventFn intr_handler;
};

struct TxQueueConf {};

// Return flags from the burst calls (mirrors UK_NETDEV_STATUS_*).
inline constexpr int kStatusSuccess = 1 << 0;   // operation made progress
inline constexpr int kStatusMore = 1 << 1;      // room/packets likely remain
inline constexpr int kStatusUnderrun = 1 << 2;  // ran out of ring/buffers

class NetDev {
 public:
  virtual ~NetDev() = default;

  virtual const char* name() const = 0;
  virtual DevInfo Info() const = 0;
  virtual MacAddr mac() const = 0;

  virtual ukarch::Status Configure(const DevConf& conf) = 0;
  virtual ukarch::Status TxQueueSetup(std::uint16_t queue, const TxQueueConf& conf) = 0;
  virtual ukarch::Status RxQueueSetup(std::uint16_t queue, const RxQueueConf& conf) = 0;
  virtual ukarch::Status Start() = 0;

  // Transmit burst: tries to enqueue pkt[0..*cnt); on return, *cnt holds the
  // number actually queued (ownership of those passes to the driver, which
  // returns them to their pool on completion). Returns status flags.
  virtual int TxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) = 0;

  // Receive burst: fills pkt[0..*cnt) with received buffers (ownership moves
  // to the caller); *cnt holds the number received. Returns status flags.
  virtual int RxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) = 0;

  // Interrupt mode (per queue) — the §3.1 storm-avoidance contract every
  // driver must implement. The line has two bits of state:
  //
  //   enabled — the application opted into interrupts (RxIntrEnable/Disable);
  //   armed   — the line may fire. RxIntrEnable arms immediately.
  //
  // Rules, in delivery order:
  //   1. FIRE-ONCE: when frames are delivered to a queue that is enabled and
  //      armed, the driver invokes the queue's intr_handler exactly once and
  //      clears |armed|. Further deliveries are silent — a burst of N frames
  //      costs one wakeup, never N (interrupt-storm avoidance).
  //   2. RE-ARM ON DRAIN: only an RxBurst that observes the queue EMPTY
  //      re-arms the line (sets |armed| while |enabled|). A partial drain
  //      (kStatusMore) keeps it disarmed: the poller clearly isn't asleep.
  //   3. ARM-THEN-CHECK: because of (1)+(2), a consumer that wants to block
  //      race-free must enable/arm FIRST and poll once more BEFORE sleeping.
  //      A frame that slipped in between fires the armed line; the verifying
  //      poll catches anything earlier. NetStack::PollWait encodes this.
  //   4. RxIntrDisable returns the queue to pure polling; a disabled queue
  //      never fires regardless of |armed|.
  //
  // Implementations must validate |queue| against the configured count
  // (out-of-range is kInval, not a no-op) and keep all interrupt state per
  // queue — sibling queues arm, fire and re-arm independently.
  virtual ukarch::Status RxIntrEnable(std::uint16_t queue) = 0;
  virtual ukarch::Status RxIntrDisable(std::uint16_t queue) = 0;

  struct Stats {
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t tx_drops = 0;
    std::uint64_t rx_packets = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t rx_drops = 0;
    std::uint64_t rx_interrupts = 0;
  };
  // Aggregate across all queues. Returned by value: drivers recompute it
  // from per-queue counters, so a snapshot taken before an operation stays
  // valid for comparison afterwards.
  virtual Stats stats() const = 0;
  // Per-queue view (tx_* from TX queue |queue|, rx_* from RX queue |queue|).
  // Single-queue drivers fall back to the aggregate.
  virtual Stats QueueStats(std::uint16_t queue) const {
    (void)queue;
    return stats();
  }
};

}  // namespace uknetdev

#endif  // UKNETDEV_NETDEV_H_
