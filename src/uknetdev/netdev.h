// uknetdev/netdev.h - the uknetdev API (§3.1), signature-faithful.
//
// The paper's core networking API: burst-based TX/RX where the caller hands
// arrays of uk_netbufs and |cnt| doubles as in/out parameter; queues operate
// in polling mode by default with an opt-in interrupt mode per queue whose
// handler re-arms only when the queue runs dry (the interrupt-storm-avoidance
// design described at the end of §3.1). Drivers register through this
// interface and are configured entirely by the application: number of queues,
// buffer pools, offloads.
#ifndef UKNETDEV_NETDEV_H_
#define UKNETDEV_NETDEV_H_

#include <cstdint>
#include <functional>

#include "ukarch/status.h"
#include "uknetdev/netbuf.h"

namespace uknetdev {

struct MacAddr {
  std::uint8_t bytes[6] = {0};
  bool operator==(const MacAddr&) const = default;
};

// Device capabilities the application queries before configuring (the paper:
// "API interfaces for applications to provide necessary information ... so
// that the application code can specialize").
struct DevInfo {
  std::uint16_t max_rx_queues = 1;
  std::uint16_t max_tx_queues = 1;
  std::uint32_t max_mtu = 1500;
  std::uint16_t tx_queue_depth = 256;
  std::uint16_t rx_queue_depth = 256;
  // Headroom bytes the driver itself prepends on TX (e.g. virtio_net_hdr).
  // Stack layers add this to their own header budget when reserving netbuf
  // headroom so every header down to the device is built in place.
  std::uint16_t tx_headroom = 0;
};

struct DevConf {
  std::uint16_t nb_rx_queues = 1;
  std::uint16_t nb_tx_queues = 1;
};

struct RxQueueConf {
  NetBufPool* buffer_pool = nullptr;  // driver refills the RX ring from here
  std::function<void(std::uint16_t queue)> intr_handler;  // optional
};

struct TxQueueConf {};

// Return flags from the burst calls (mirrors UK_NETDEV_STATUS_*).
inline constexpr int kStatusSuccess = 1 << 0;   // operation made progress
inline constexpr int kStatusMore = 1 << 1;      // room/packets likely remain
inline constexpr int kStatusUnderrun = 1 << 2;  // ran out of ring/buffers

class NetDev {
 public:
  virtual ~NetDev() = default;

  virtual const char* name() const = 0;
  virtual DevInfo Info() const = 0;
  virtual MacAddr mac() const = 0;

  virtual ukarch::Status Configure(const DevConf& conf) = 0;
  virtual ukarch::Status TxQueueSetup(std::uint16_t queue, const TxQueueConf& conf) = 0;
  virtual ukarch::Status RxQueueSetup(std::uint16_t queue, const RxQueueConf& conf) = 0;
  virtual ukarch::Status Start() = 0;

  // Transmit burst: tries to enqueue pkt[0..*cnt); on return, *cnt holds the
  // number actually queued (ownership of those passes to the driver, which
  // returns them to their pool on completion). Returns status flags.
  virtual int TxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) = 0;

  // Receive burst: fills pkt[0..*cnt) with received buffers (ownership moves
  // to the caller); *cnt holds the number received. Returns status flags.
  virtual int RxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) = 0;

  // Interrupt mode (per queue). When enabled, the queue's handler fires once
  // the next packet arrives after the queue was drained; the driver disarms
  // the line until RxBurst observes empty again (§3.1's storm avoidance).
  virtual ukarch::Status RxIntrEnable(std::uint16_t queue) = 0;
  virtual ukarch::Status RxIntrDisable(std::uint16_t queue) = 0;

  struct Stats {
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t tx_drops = 0;
    std::uint64_t rx_packets = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t rx_drops = 0;
    std::uint64_t rx_interrupts = 0;
  };
  // Aggregate across all queues. Returned by value: drivers recompute it
  // from per-queue counters, so a snapshot taken before an operation stays
  // valid for comparison afterwards.
  virtual Stats stats() const = 0;
  // Per-queue view (tx_* from TX queue |queue|, rx_* from RX queue |queue|).
  // Single-queue drivers fall back to the aggregate.
  virtual Stats QueueStats(std::uint16_t queue) const {
    (void)queue;
    return stats();
  }
};

}  // namespace uknetdev

#endif  // UKNETDEV_NETDEV_H_
