#include "uknetdev/virtio_net.h"

#include <cstring>

namespace uknetdev {

VirtioNet::VirtioNet(ukplat::MemRegion* mem, ukplat::Clock* clock, ukplat::Wire* wire,
                     Config config)
    : mem_(mem), clock_(clock), wire_(wire), config_(config) {}

DevInfo VirtioNet::Info() const {
  DevInfo info;
  info.max_rx_queues = 1;
  info.max_tx_queues = 1;
  info.max_mtu = static_cast<std::uint32_t>(wire_->config().mtu);
  info.tx_queue_depth = config_.queue_size;
  info.rx_queue_depth = config_.queue_size;
  info.tx_headroom = kVirtioHdrBytes;
  return info;
}

ukarch::Status VirtioNet::Configure(const DevConf& conf) {
  if (conf.nb_rx_queues > 1 || conf.nb_tx_queues > 1) {
    return ukarch::Status::kNotSup;  // single queue pair, like virtio-net v1 base
  }
  return ukarch::Status::kOk;
}

ukarch::Status VirtioNet::TxQueueSetup(std::uint16_t queue, const TxQueueConf&) {
  if (queue != 0) {
    return ukarch::Status::kInval;
  }
  std::uint64_t gpa = mem_->Carve(ukplat::Virtqueue::FootprintBytes(config_.queue_size), 16);
  if (gpa == ukplat::MemRegion::kBadGpa) {
    return ukarch::Status::kNoMem;
  }
  txq_ = std::make_unique<ukplat::Virtqueue>(mem_, gpa, config_.queue_size);
  return ukarch::Status::kOk;
}

ukarch::Status VirtioNet::RxQueueSetup(std::uint16_t queue, const RxQueueConf& conf) {
  if (queue != 0) {
    return ukarch::Status::kInval;
  }
  if (conf.buffer_pool == nullptr) {
    return ukarch::Status::kInval;  // the application must provide memory (§3.1)
  }
  std::uint64_t gpa = mem_->Carve(ukplat::Virtqueue::FootprintBytes(config_.queue_size), 16);
  if (gpa == ukplat::MemRegion::kBadGpa) {
    return ukarch::Status::kNoMem;
  }
  rxq_ = std::make_unique<ukplat::Virtqueue>(mem_, gpa, config_.queue_size);
  rx_pool_ = conf.buffer_pool;
  rx_intr_handler_ = conf.intr_handler;
  return ukarch::Status::kOk;
}

ukarch::Status VirtioNet::Start() {
  if (txq_ == nullptr || rxq_ == nullptr) {
    return ukarch::Status::kInval;
  }
  started_ = true;
  FillRxRing();
  return ukarch::Status::kOk;
}

void VirtioNet::FillRxRing() {
  // Keep the RX ring stocked with writable buffers from the application pool.
  while (rxq_->NumFree() > 0) {
    NetBuf* nb = rx_pool_->Alloc();
    if (nb == nullptr) {
      break;  // application pool exhausted; counted on actual drops
    }
    // The device writes virtio_net_hdr + frame at the buffer start; reserve
    // the full capacity. Headroom bookkeeping happens at completion.
    nb->headroom = 0;
    nb->len = 0;
    ukplat::Virtqueue::Segment seg{nb->gpa, nb->capacity, true};
    if (!rxq_->Enqueue(std::span(&seg, 1), nb)) {
      rx_pool_->Free(nb);
      break;
    }
  }
  rxq_->MarkKicked();  // RX refill kicks are free on both backends (posted idly)
}

int VirtioNet::TxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) {
  if (!started_ || queue != 0) {
    *cnt = 0;
    return kStatusUnderrun;
  }
  const std::uint16_t requested = *cnt;
  std::uint16_t queued = 0;
  for (; queued < requested; ++queued) {
    NetBuf* nb = pkt[queued];
    if (nb->len > wire_->config().mtu + 14) {
      ++stats_.tx_drops;
      break;
    }
    // Prepend the virtio_net_hdr in buffer headroom (no copy).
    if (!nb->Push(kVirtioHdrBytes)) {
      ++stats_.tx_drops;
      break;
    }
    std::byte* hdr = mem_->At(nb->data_gpa(), kVirtioHdrBytes);
    if (hdr != nullptr) {
      std::memset(hdr, 0, kVirtioHdrBytes);  // no offloads
    }
    ukplat::Virtqueue::Segment seg{nb->data_gpa(), nb->len, false};
    if (!txq_->Enqueue(std::span(&seg, 1), nb)) {
      nb->Pull(kVirtioHdrBytes);  // undo; caller keeps ownership
      break;
    }
  }
  *cnt = queued;

  if (queued > 0 && config_.backend == VirtioBackend::kVhostNet && txq_->NeedsKick()) {
    // Notify the vhost thread: VM exit + eventfd signal.
    clock_->Charge(clock_->model().vm_exit + clock_->model().vhost_kick);
    txq_->MarkKicked();
    ++kicks_;
  } else if (config_.backend == VirtioBackend::kVhostUser) {
    txq_->MarkKicked();  // poller needs no notification
  }
  BackendPoll();

  // Reap TX completions: release the driver's reference. Buffers whose only
  // holder was the ring return to their pools; buffers a protocol layer
  // retained (TCP retransmission queue) stay alive with that holder.
  while (auto done = txq_->DequeueCompletion()) {
    auto* nb = static_cast<NetBuf*>(done->cookie);
    if (nb->pool != nullptr) {
      nb->pool->Free(nb);
    }
  }

  int flags = queued > 0 ? kStatusSuccess : 0;
  if (txq_->NumFree() > 0) {
    flags |= kStatusMore;
  }
  if (queued < requested) {
    flags |= kStatusUnderrun;
  }
  return flags;
}

void VirtioNet::BackendPoll() {
  if (!started_) {
    return;
  }
  const ukplat::CostModel& m = clock_->model();
  std::uint64_t per_pkt = config_.backend == VirtioBackend::kVhostNet
                              ? m.vhost_net_per_packet
                              : m.vhost_user_per_packet;

  // TX direction: guest ring -> wire.
  while (auto chain = txq_->DevicePop()) {
    const auto& seg = chain->segments[0];
    const std::byte* bytes = mem_->At(seg.gpa, seg.len);
    if (bytes != nullptr && seg.len > kVirtioHdrBytes) {
      std::vector<std::uint8_t> frame(
          reinterpret_cast<const std::uint8_t*>(bytes) + kVirtioHdrBytes,
          reinterpret_cast<const std::uint8_t*>(bytes) + seg.len);
      clock_->Charge(per_pkt);
      clock_->ChargeCopy(frame.size());
      if (wire_->Send(config_.wire_side, std::move(frame))) {
        stats_.tx_bytes += seg.len - kVirtioHdrBytes;
        ++stats_.tx_packets;
      } else {
        ++stats_.tx_drops;
      }
    }
    txq_->DevicePush(chain->head, 0);
  }

  // RX direction: wire -> guest ring.
  bool delivered = false;
  while (wire_->Pending(config_.wire_side) > 0 && rxq_->DeviceHasWork()) {
    auto chain = rxq_->DevicePop();
    if (!chain.has_value()) {
      break;
    }
    auto frame = wire_->Receive(config_.wire_side);
    if (!frame.has_value()) {
      rxq_->DevicePush(chain->head, 0);
      break;
    }
    const auto& seg = chain->segments[0];
    std::uint32_t total = kVirtioHdrBytes + static_cast<std::uint32_t>(frame->size());
    if (total > seg.len) {
      ++stats_.rx_drops;
      rxq_->DevicePush(chain->head, 0);
      continue;
    }
    std::byte* dst = mem_->At(seg.gpa, total);
    std::memset(dst, 0, kVirtioHdrBytes);
    std::memcpy(dst + kVirtioHdrBytes, frame->data(), frame->size());
    clock_->Charge(per_pkt);
    clock_->ChargeCopy(frame->size());
    rxq_->DevicePush(chain->head, total);
    delivered = true;
  }
  if (delivered) {
    RaiseRxInterruptIfArmed();
  }
}

void VirtioNet::RaiseRxInterruptIfArmed() {
  if (intr_enabled_ && intr_armed_) {
    intr_armed_ = false;  // line stays inactive until RxBurst drains the queue
    clock_->Charge(clock_->model().irq_inject);
    ++stats_.rx_interrupts;
    if (rx_intr_handler_) {
      rx_intr_handler_(0);
    }
  }
}

int VirtioNet::RxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) {
  if (!started_ || queue != 0) {
    *cnt = 0;
    return kStatusUnderrun;
  }
  BackendPoll();
  std::uint16_t got = 0;
  while (got < *cnt) {
    auto done = rxq_->DequeueCompletion();
    if (!done.has_value()) {
      break;
    }
    auto* nb = static_cast<NetBuf*>(done->cookie);
    if (done->written <= kVirtioHdrBytes) {
      rx_pool_->Free(nb);
      continue;
    }
    nb->headroom = kVirtioHdrBytes;
    nb->len = done->written - kVirtioHdrBytes;
    stats_.rx_bytes += nb->len;
    ++stats_.rx_packets;
    pkt[got++] = nb;
  }
  *cnt = got;
  FillRxRing();

  int flags = got > 0 ? kStatusSuccess : 0;
  bool more = rxq_->HasCompletions() || wire_->Pending(config_.wire_side) > 0;
  if (more) {
    flags |= kStatusMore;
  } else if (intr_enabled_) {
    intr_armed_ = true;  // queue drained: re-arm the line (§3.1)
  }
  return flags;
}

ukarch::Status VirtioNet::RxIntrEnable(std::uint16_t queue) {
  if (queue != 0) {
    return ukarch::Status::kInval;
  }
  intr_enabled_ = true;
  intr_armed_ = true;
  return ukarch::Status::kOk;
}

ukarch::Status VirtioNet::RxIntrDisable(std::uint16_t queue) {
  if (queue != 0) {
    return ukarch::Status::kInval;
  }
  intr_enabled_ = false;
  intr_armed_ = false;
  return ukarch::Status::kOk;
}

}  // namespace uknetdev
