#include "uknetdev/virtio_net.h"

#include <cstring>

#include "uknetdev/rss.h"

namespace uknetdev {

VirtioNet::VirtioNet(ukplat::MemRegion* mem, ukplat::Clock* clock, ukplat::Wire* wire,
                     Config config)
    : mem_(mem), clock_(clock), wire_(wire), config_(config) {
  if (config_.max_queue_pairs == 0) {
    config_.max_queue_pairs = 1;
  }
  if (config_.max_queue_pairs > kMaxQueuePairs) {
    config_.max_queue_pairs = kMaxQueuePairs;
  }
  txqs_.resize(1);
  rxqs_.resize(1);
  // Make the switch port exist now: a polled NIC may never register a signal
  // fn, and a port the switch has never seen receives no flooded frames.
  wire_->AttachPort(config_.wire_side);
}

VirtioNet::~VirtioNet() {
  if (signal_registered_) {
    wire_->SetSignalFn(config_.wire_side, nullptr);
  }
}

void VirtioNet::OnWireSignal() {
  if (!started_ || in_backend_poll_.load(std::memory_order_acquire)) {
    return;
  }
  // Only spend device-side work when some queue actually wants wakeups; a
  // poll-mode guest keeps its burst-driven backend schedule untouched.
  for (const RxQueue& q : rxqs_) {
    if (q.intr_enabled) {
      BackendPoll();
      return;
    }
  }
}

DevInfo VirtioNet::Info() const {
  DevInfo info;
  info.max_rx_queues = config_.max_queue_pairs;
  info.max_tx_queues = config_.max_queue_pairs;
  info.max_mtu = static_cast<std::uint32_t>(wire_->config().mtu);
  info.tx_queue_depth = config_.queue_size;
  info.rx_queue_depth = config_.queue_size;
  info.tx_headroom = kVirtioHdrBytes;
  return info;
}

ukarch::Status VirtioNet::Configure(const DevConf& conf) {
  if (conf.nb_rx_queues == 0 || conf.nb_tx_queues == 0) {
    return ukarch::Status::kInval;
  }
  if (conf.nb_rx_queues > config_.max_queue_pairs ||
      conf.nb_tx_queues > config_.max_queue_pairs) {
    return ukarch::Status::kNotSup;  // beyond the negotiated queue pairs
  }
  nb_rx_ = conf.nb_rx_queues;
  nb_tx_ = conf.nb_tx_queues;
  txqs_.clear();
  txqs_.resize(nb_tx_);
  rxqs_.clear();
  rxqs_.resize(nb_rx_);
  return ukarch::Status::kOk;
}

ukarch::Status VirtioNet::TxQueueSetup(std::uint16_t queue, const TxQueueConf&) {
  if (queue >= nb_tx_) {
    return ukarch::Status::kInval;
  }
  std::uint64_t gpa = mem_->Carve(ukplat::Virtqueue::FootprintBytes(config_.queue_size), 16);
  if (gpa == ukplat::MemRegion::kBadGpa) {
    return ukarch::Status::kNoMem;
  }
  txqs_[queue].vq = std::make_unique<ukplat::Virtqueue>(mem_, gpa, config_.queue_size);
  return ukarch::Status::kOk;
}

ukarch::Status VirtioNet::RxQueueSetup(std::uint16_t queue, const RxQueueConf& conf) {
  if (queue >= nb_rx_) {
    return ukarch::Status::kInval;
  }
  if (conf.buffer_pool == nullptr) {
    return ukarch::Status::kInval;  // the application must provide memory (§3.1)
  }
  std::uint64_t gpa = mem_->Carve(ukplat::Virtqueue::FootprintBytes(config_.queue_size), 16);
  if (gpa == ukplat::MemRegion::kBadGpa) {
    return ukarch::Status::kNoMem;
  }
  rxqs_[queue].vq = std::make_unique<ukplat::Virtqueue>(mem_, gpa, config_.queue_size);
  rxqs_[queue].pool = conf.buffer_pool;
  rxqs_[queue].intr_handler = conf.intr_handler;
  return ukarch::Status::kOk;
}

ukarch::Status VirtioNet::Start() {
  for (const TxQueue& q : txqs_) {
    if (q.vq == nullptr) {
      return ukarch::Status::kInval;
    }
  }
  for (const RxQueue& q : rxqs_) {
    if (q.vq == nullptr) {
      return ukarch::Status::kInval;
    }
  }
  started_ = true;
  for (std::uint16_t q = 0; q < nb_rx_; ++q) {
    FillRxRing(q);
  }
  return ukarch::Status::kOk;
}

void VirtioNet::FillRxRing(std::uint16_t queue) {
  RxQueue& rxq = rxqs_[queue];
  // Keep the RX ring stocked with writable buffers from the queue's pool.
  while (rxq.vq->NumFree() > 0) {
    NetBuf* nb = rxq.pool->Alloc();
    if (nb == nullptr) {
      break;  // queue's pool exhausted; counted on actual drops
    }
    // The device writes virtio_net_hdr + frame at the buffer start; reserve
    // the full capacity. Headroom bookkeeping happens at completion.
    nb->headroom = 0;
    nb->len = 0;
    ukplat::Virtqueue::Segment seg{nb->gpa, nb->capacity, true};
    if (!rxq.vq->Enqueue(std::span(&seg, 1), nb)) {
      rxq.pool->Free(nb);
      break;
    }
  }
  rxq.vq->MarkKicked();  // RX refill kicks are free on both backends (posted idly)
}

int VirtioNet::TxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) {
  if (!started_ || queue >= nb_tx_) {
    *cnt = 0;
    return kStatusUnderrun;
  }
  TxQueue& txq = txqs_[queue];
  const std::uint16_t requested = *cnt;
  std::uint16_t queued = 0;
  for (; queued < requested; ++queued) {
    NetBuf* nb = pkt[queued];
    if (nb->len > wire_->config().mtu + 14) {
      ++txq.stats.tx_drops;
      break;
    }
    // Prepend the virtio_net_hdr in buffer headroom (no copy).
    if (!nb->Push(kVirtioHdrBytes)) {
      ++txq.stats.tx_drops;
      break;
    }
    std::byte* hdr = mem_->At(nb->data_gpa(), kVirtioHdrBytes);
    if (hdr != nullptr) {
      std::memset(hdr, 0, kVirtioHdrBytes);  // no offloads
    }
    ukplat::Virtqueue::Segment seg{nb->data_gpa(), nb->len, false};
    if (!txq.vq->Enqueue(std::span(&seg, 1), nb)) {
      nb->Pull(kVirtioHdrBytes);  // undo; caller keeps ownership
      break;
    }
  }
  *cnt = queued;

  if (queued > 0 && config_.backend == VirtioBackend::kVhostNet && txq.vq->NeedsKick()) {
    // Notify the vhost thread: VM exit + eventfd signal.
    clock_->Charge(clock_->model().vm_exit + clock_->model().vhost_kick);
    txq.vq->MarkKicked();
    kicks_.fetch_add(1, std::memory_order_relaxed);
  } else if (config_.backend == VirtioBackend::kVhostUser) {
    txq.vq->MarkKicked();  // poller needs no notification
  }
  BackendPoll();

  // Reap TX completions: release the driver's reference. Buffers whose only
  // holder was the ring return to their pools; buffers a protocol layer
  // retained (TCP retransmission queue) stay alive with that holder.
  while (auto done = txq.vq->DequeueCompletion()) {
    auto* nb = static_cast<NetBuf*>(done->cookie);
    if (nb->pool != nullptr) {
      nb->pool->Free(nb);
    }
  }

  int flags = queued > 0 ? kStatusSuccess : 0;
  if (txq.vq->NumFree() > 0) {
    flags |= kStatusMore;
  }
  if (queued < requested) {
    flags |= kStatusUnderrun;
  }
  return flags;
}

void VirtioNet::BackendPoll() {
  // Single-step claim: check-then-set as two operations would let two
  // entrants (recursive signal, or a sibling loop's thread) both pass the
  // check and pump the rings concurrently.
  if (!started_ || in_backend_poll_.exchange(true, std::memory_order_acquire)) {
    return;
  }
  const ukplat::CostModel& m = clock_->model();
  std::uint64_t per_pkt = config_.backend == VirtioBackend::kVhostNet
                              ? m.vhost_net_per_packet
                              : m.vhost_user_per_packet;

  // TX direction: guest rings -> wire.
  for (TxQueue& txq : txqs_) {
    while (auto chain = txq.vq->DevicePop()) {
      const auto& seg = chain->segments[0];
      const std::byte* bytes = mem_->At(seg.gpa, seg.len);
      if (bytes != nullptr && seg.len > kVirtioHdrBytes) {
        std::vector<std::uint8_t> frame(
            reinterpret_cast<const std::uint8_t*>(bytes) + kVirtioHdrBytes,
            reinterpret_cast<const std::uint8_t*>(bytes) + seg.len);
        clock_->Charge(per_pkt);
        clock_->ChargeCopy(frame.size());
        if (wire_->Send(config_.wire_side, std::move(frame))) {
          txq.stats.tx_bytes += seg.len - kVirtioHdrBytes;
          ++txq.stats.tx_packets;
        } else {
          ++txq.stats.tx_drops;
        }
      }
      txq.vq->DevicePush(chain->head, 0);
    }
  }

  // RX direction: wire -> guest rings, one RSS classification per frame (the
  // hash a multi-queue NIC computes in hardware). A single-queue device keeps
  // the old backpressure behaviour — frames wait on the wire while the ring
  // is full; with multiple queues a full ring drops its own frames so a
  // stalled queue can never block traffic headed for its siblings.
  bool delivered[kMaxQueuePairs] = {false};
  bool any = false;
  while (wire_->Pending(config_.wire_side) > 0) {
    if (nb_rx_ == 1 && !rxqs_[0].vq->DeviceHasWork()) {
      break;
    }
    auto frame = wire_->Receive(config_.wire_side);
    if (!frame.has_value()) {
      break;
    }
    std::uint16_t qi = RssQueueForFrame(frame->data(), frame->size(), nb_rx_);
    RxQueue& rxq = rxqs_[qi];
    auto chain = rxq.vq->DevicePop();
    if (!chain.has_value()) {
      ++rxq.stats.rx_drops;  // ring dry (pool exhausted): this queue's loss only
      continue;
    }
    const auto& seg = chain->segments[0];
    std::uint32_t total = kVirtioHdrBytes + static_cast<std::uint32_t>(frame->size());
    if (total > seg.len) {
      ++rxq.stats.rx_drops;
      rxq.vq->DevicePush(chain->head, 0);
      continue;
    }
    std::byte* dst = mem_->At(seg.gpa, total);
    std::memset(dst, 0, kVirtioHdrBytes);
    std::memcpy(dst + kVirtioHdrBytes, frame->data(), frame->size());
    clock_->Charge(per_pkt);
    clock_->ChargeCopy(frame->size());
    rxq.vq->DevicePush(chain->head, total);
    delivered[qi] = true;
    any = true;
  }
  if (any) {
    for (std::uint16_t q = 0; q < nb_rx_; ++q) {
      if (delivered[q]) {
        RaiseRxInterruptIfArmed(q);
      }
    }
  }
  in_backend_poll_.store(false, std::memory_order_release);
}

void VirtioNet::RaiseRxInterruptIfArmed(std::uint16_t queue) {
  RxQueue& rxq = rxqs_[queue];
  if (rxq.intr_enabled && rxq.intr_armed) {
    rxq.intr_armed = false;  // line stays inactive until RxBurst drains the queue
    clock_->Charge(clock_->model().irq_inject);
    ++rxq.stats.rx_interrupts;
    if (rxq.intr_handler) {
      rxq.intr_handler(queue);
    }
  }
}

int VirtioNet::RxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) {
  if (!started_ || queue >= nb_rx_) {
    *cnt = 0;
    return kStatusUnderrun;
  }
  BackendPoll();
  RxQueue& rxq = rxqs_[queue];
  std::uint16_t got = 0;
  while (got < *cnt) {
    auto done = rxq.vq->DequeueCompletion();
    if (!done.has_value()) {
      break;
    }
    auto* nb = static_cast<NetBuf*>(done->cookie);
    if (done->written <= kVirtioHdrBytes) {
      rxq.pool->Free(nb);
      continue;
    }
    nb->headroom = kVirtioHdrBytes;
    nb->len = done->written - kVirtioHdrBytes;
    rxq.stats.rx_bytes += nb->len;
    ++rxq.stats.rx_packets;
    pkt[got++] = nb;
  }
  *cnt = got;
  FillRxRing(queue);

  int flags = got > 0 ? kStatusSuccess : 0;
  bool more = rxq.vq->HasCompletions() ||
              (nb_rx_ == 1 && wire_->Pending(config_.wire_side) > 0);
  if (more) {
    flags |= kStatusMore;
  } else if (rxq.intr_enabled) {
    rxq.intr_armed = true;  // queue drained: re-arm the line (§3.1)
  }
  return flags;
}

ukarch::Status VirtioNet::RxIntrEnable(std::uint16_t queue) {
  if (queue >= nb_rx_) {
    return ukarch::Status::kInval;
  }
  rxqs_[queue].intr_enabled = true;
  rxqs_[queue].intr_armed = true;
  if (!signal_registered_) {
    // From now on the device side also runs on wire activity, so an armed
    // line can fire while the guest sleeps (the vhost thread's job).
    wire_->SetSignalFn(config_.wire_side, [this] { OnWireSignal(); });
    signal_registered_ = true;
  }
  return ukarch::Status::kOk;
}

ukarch::Status VirtioNet::RxIntrDisable(std::uint16_t queue) {
  if (queue >= nb_rx_) {
    return ukarch::Status::kInval;
  }
  rxqs_[queue].intr_enabled = false;
  rxqs_[queue].intr_armed = false;
  return ukarch::Status::kOk;
}

NetDev::Stats VirtioNet::stats() const {
  Stats agg{};
  for (const TxQueue& q : txqs_) {
    agg.tx_packets += q.stats.tx_packets;
    agg.tx_bytes += q.stats.tx_bytes;
    agg.tx_drops += q.stats.tx_drops;
  }
  for (const RxQueue& q : rxqs_) {
    agg.rx_packets += q.stats.rx_packets;
    agg.rx_bytes += q.stats.rx_bytes;
    agg.rx_drops += q.stats.rx_drops;
    agg.rx_interrupts += q.stats.rx_interrupts;
  }
  return agg;
}

NetDev::Stats VirtioNet::QueueStats(std::uint16_t queue) const {
  Stats s{};
  if (queue < txqs_.size()) {
    s.tx_packets = txqs_[queue].stats.tx_packets;
    s.tx_bytes = txqs_[queue].stats.tx_bytes;
    s.tx_drops = txqs_[queue].stats.tx_drops;
  }
  if (queue < rxqs_.size()) {
    s.rx_packets = rxqs_[queue].stats.rx_packets;
    s.rx_bytes = rxqs_[queue].stats.rx_bytes;
    s.rx_drops = rxqs_[queue].stats.rx_drops;
    s.rx_interrupts = rxqs_[queue].stats.rx_interrupts;
  }
  return s;
}

}  // namespace uknetdev
