// uknetdev/loopback.h - loopback netdev: TX burst becomes RX burst.
//
// Used by single-image tests and by server+client colocated setups. Frames
// are copied into buffers from the RX pool so ownership semantics match real
// drivers exactly.
#ifndef UKNETDEV_LOOPBACK_H_
#define UKNETDEV_LOOPBACK_H_

#include <deque>

#include "uknetdev/netdev.h"
#include "ukplat/memregion.h"

namespace uknetdev {

class Loopback final : public NetDev {
 public:
  explicit Loopback(ukplat::MemRegion* mem, MacAddr mac = MacAddr{{2, 0, 0, 0, 0, 1}})
      : mem_(mem), mac_(mac) {}

  const char* name() const override { return "loopback"; }
  DevInfo Info() const override { return DevInfo{}; }
  MacAddr mac() const override { return mac_; }

  ukarch::Status Configure(const DevConf&) override { return ukarch::Status::kOk; }
  ukarch::Status TxQueueSetup(std::uint16_t, const TxQueueConf&) override {
    return ukarch::Status::kOk;
  }
  ukarch::Status RxQueueSetup(std::uint16_t queue, const RxQueueConf& conf) override;
  ukarch::Status Start() override;

  int TxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) override;
  int RxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) override;

  ukarch::Status RxIntrEnable(std::uint16_t) override {
    intr_enabled_ = true;
    intr_armed_ = true;
    return ukarch::Status::kOk;
  }
  ukarch::Status RxIntrDisable(std::uint16_t) override {
    intr_enabled_ = false;
    return ukarch::Status::kOk;
  }

  const Stats& stats() const override { return stats_; }

 private:
  ukplat::MemRegion* mem_;
  MacAddr mac_;
  NetBufPool* rx_pool_ = nullptr;
  std::function<void(std::uint16_t)> rx_intr_handler_;
  std::deque<NetBuf*> rx_queue_;
  bool started_ = false;
  bool intr_enabled_ = false;
  bool intr_armed_ = false;
  Stats stats_{};
};

}  // namespace uknetdev

#endif  // UKNETDEV_LOOPBACK_H_
