// uknetdev/loopback.h - loopback netdev: TX burst becomes RX burst.
//
// Used by single-image tests and by server+client colocated setups. Frames
// are copied into buffers from the RX pool so ownership semantics match real
// drivers exactly. Multi-queue: every transmitted frame is classified with
// the shared RSS hash (rss.h) and lands on the matching RX queue, so the
// loopback exercises the same flow -> queue demux as virtio-net.
#ifndef UKNETDEV_LOOPBACK_H_
#define UKNETDEV_LOOPBACK_H_

#include <deque>
#include <vector>

#include "uknetdev/netdev.h"
#include "ukplat/memregion.h"

namespace uknetdev {

class Loopback final : public NetDev {
 public:
  static constexpr std::uint16_t kMaxQueues = 8;

  explicit Loopback(ukplat::MemRegion* mem, MacAddr mac = MacAddr{{2, 0, 0, 0, 0, 1}},
                    std::uint16_t max_queues = 4)
      : mem_(mem), mac_(mac) {
    max_queues_ = max_queues == 0 ? 1 : max_queues;
    if (max_queues_ > kMaxQueues) {
      max_queues_ = kMaxQueues;
    }
    rxqs_.resize(1);
    txq_stats_.resize(1);
  }

  const char* name() const override { return "loopback"; }
  DevInfo Info() const override {
    DevInfo info;
    info.max_rx_queues = max_queues_;
    info.max_tx_queues = max_queues_;
    return info;
  }
  MacAddr mac() const override { return mac_; }

  ukarch::Status Configure(const DevConf& conf) override;
  ukarch::Status TxQueueSetup(std::uint16_t queue, const TxQueueConf& conf) override;
  ukarch::Status RxQueueSetup(std::uint16_t queue, const RxQueueConf& conf) override;
  ukarch::Status Start() override;

  int TxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) override;
  int RxBurst(std::uint16_t queue, NetBuf** pkt, std::uint16_t* cnt) override;

  // Per-queue interrupt arming; queue indices are validated against the
  // configured count (an out-of-range index is a caller bug, not a no-op).
  ukarch::Status RxIntrEnable(std::uint16_t queue) override;
  ukarch::Status RxIntrDisable(std::uint16_t queue) override;

  Stats stats() const override;
  Stats QueueStats(std::uint16_t queue) const override;

 private:
  struct RxQueue {
    NetBufPool* pool = nullptr;
    std::function<void(std::uint16_t)> intr_handler;
    std::deque<NetBuf*> ring;
    bool intr_enabled = false;
    bool intr_armed = false;
    Stats stats{};  // rx_* fields only
  };

  ukplat::MemRegion* mem_;
  MacAddr mac_;
  std::uint16_t max_queues_;
  std::uint16_t nb_rx_ = 1;
  std::uint16_t nb_tx_ = 1;
  std::vector<RxQueue> rxqs_;
  std::vector<Stats> txq_stats_;  // tx_* fields only
  bool started_ = false;
};

}  // namespace uknetdev

#endif  // UKNETDEV_LOOPBACK_H_
