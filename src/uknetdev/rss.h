// uknetdev/rss.h - receive-side scaling: frame -> queue classification.
//
// The device-side half of the multi-queue contract. Every driver that fans
// RX across queues runs this exact classifier over the raw frame bytes, and
// the stack steers TX with the same ukarch::FlowHash4 — so a flow's frames
// land on one queue in both directions and no cross-queue state is ever
// touched on the hot path. The parse is the fixed-offset walk NIC hardware
// does: Ethernet, IPv4 (honouring IHL), then TCP/UDP ports.
#ifndef UKNETDEV_RSS_H_
#define UKNETDEV_RSS_H_

#include <cstddef>
#include <cstdint>

#include "ukarch/hash.h"

namespace uknetdev {

inline constexpr std::uint16_t kRssEthBytes = 14;
inline constexpr std::uint16_t kRssEthTypeIp4 = 0x0800;
inline constexpr std::uint8_t kRssProtoTcp = 6;
inline constexpr std::uint8_t kRssProtoUdp = 17;

// Flow hash of a raw Ethernet frame. TCP/UDP over IPv4 hash the symmetric
// 4-tuple; other IPv4 traffic (ICMP, unknown protocols) hashes the address
// pair so it still spreads deterministically; non-IP frames (ARP) return 0 —
// control traffic belongs on queue 0.
constexpr std::uint32_t RssHashForFrame(const std::uint8_t* frame, std::size_t len) {
  if (frame == nullptr || len < kRssEthBytes + 20) {
    return 0;
  }
  const std::uint16_t ethertype =
      static_cast<std::uint16_t>((frame[12] << 8) | frame[13]);
  if (ethertype != kRssEthTypeIp4) {
    return 0;
  }
  const std::uint8_t* ip = frame + kRssEthBytes;
  if ((ip[0] >> 4) != 4) {
    return 0;
  }
  const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0f) * 4;
  if (ihl < 20 || kRssEthBytes + ihl > len) {
    return 0;
  }
  const std::uint32_t src = (static_cast<std::uint32_t>(ip[12]) << 24) |
                            (static_cast<std::uint32_t>(ip[13]) << 16) |
                            (static_cast<std::uint32_t>(ip[14]) << 8) |
                            static_cast<std::uint32_t>(ip[15]);
  const std::uint32_t dst = (static_cast<std::uint32_t>(ip[16]) << 24) |
                            (static_cast<std::uint32_t>(ip[17]) << 16) |
                            (static_cast<std::uint32_t>(ip[18]) << 8) |
                            static_cast<std::uint32_t>(ip[19]);
  const std::uint8_t proto = ip[9];
  if ((proto == kRssProtoTcp || proto == kRssProtoUdp) &&
      kRssEthBytes + ihl + 4 <= len) {
    const std::uint8_t* l4 = ip + ihl;
    const std::uint16_t sport = static_cast<std::uint16_t>((l4[0] << 8) | l4[1]);
    const std::uint16_t dport = static_cast<std::uint16_t>((l4[2] << 8) | l4[3]);
    return ukarch::FlowHash4(src, sport, dst, dport);
  }
  return ukarch::FlowHash4(src, 0, dst, 0);
}

constexpr std::uint16_t RssQueueForFrame(const std::uint8_t* frame, std::size_t len,
                                         std::uint16_t nb_queues) {
  if (nb_queues <= 1) {
    return 0;
  }
  return static_cast<std::uint16_t>(RssHashForFrame(frame, len) % nb_queues);
}

}  // namespace uknetdev

#endif  // UKNETDEV_RSS_H_
