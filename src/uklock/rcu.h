// uklock/rcu.h - quiescent-state-based reclamation (QSBR) for the event loops.
//
// The paper's uklock names RCU as the multi-core synchronization idiom; this
// is the flavor that fits a run-to-completion runtime. Readers (the per-queue
// event loops) take NO lock and write NO shared word on the hot path: they
// acquire-load a published pointer and use it for the remainder of the
// current loop turn. What makes that safe is the quiescent contract: a loop
// announces a quiescent state at its turn boundaries (end of Poll /
// PollWait), promising it holds no reference from an earlier turn. Writers
// are serialized on a plain mutex, publish a new version with a release
// store, and *retire* the old one — it is reclaimed only after every online
// loop has announced a quiescent state that postdates the publication (one
// grace period).
//
// RcuDomain is the grace-period machinery (epoch counter, per-slot
// announcements, retire list). RcuRegistry<K,V> is the copy-on-write std::map
// the stack's connection/port registries build on: Read() is the lock-free
// demux path, mutations copy the map, publish the copy, and retire the old.
// Registry values are typically shared_ptr, so a snapshot iterated by one
// loop keeps its sockets alive even while a writer unlinks them.
#ifndef UKLOCK_RCU_H_
#define UKLOCK_RCU_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace uklock {

class RcuDomain {
 public:
  // One slot per reader loop. The stack maps queue q to slot q and the
  // Poll()/PollWait(kAllQueues) caller to its own slot; anything wider
  // shares the last slot (correct, just coarser).
  static constexpr std::size_t kMaxSlots = 18;
  static std::size_t Slot(std::size_t i) {
    return i < kMaxSlots ? i : kMaxSlots - 1;
  }

  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // Reader side: |slot|'s loop announces it holds no reference obtained in an
  // earlier turn. First announcement brings the slot online; it stays online
  // until Offline (an exited loop that never offlines only DELAYS
  // reclamation — Synchronize at teardown still drains).
  void Quiescent(std::size_t slot) {
    SlotState& s = slots_[Slot(slot)];
    s.online.store(true, std::memory_order_relaxed);
    // Acquire the epoch then release-publish it: a writer that reads this
    // announcement (acquire) knows every read of this loop's previous turn
    // happened-before it.
    s.announced.store(epoch_.load(std::memory_order_acquire),
                      std::memory_order_release);
    TryReclaim();
  }
  void Offline(std::size_t slot) {
    slots_[Slot(slot)].online.store(false, std::memory_order_release);
  }

  // Writer side (call with the writer serialized externally or not at all —
  // the domain locks its own retire list): defers |reclaim| until one grace
  // period after now.
  void Retire(std::function<void()> reclaim) {
    std::lock_guard<std::mutex> lk(mu_);
    // The publication this retirement protects used a release store; bumping
    // the epoch afterwards (release) lets readers pair an acquire epoch load
    // with it. +1: the grace period ends when every online slot has announced
    // an epoch >= the post-bump value.
    const std::uint64_t target =
        epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    pending_.push_back(Pending{target, std::move(reclaim)});
  }

  // Runs every retirement whose grace period has elapsed. Called from
  // Quiescent (amortized, try-lock so reader turns never contend) and usable
  // directly. Returns callbacks run.
  std::size_t TryReclaim() {
    std::unique_lock<std::mutex> lk(mu_, std::try_to_lock);
    if (!lk.owns_lock()) {
      return 0;
    }
    return ReclaimLocked();
  }

  // Teardown/writer barrier: treats the world as quiescent-by-construction
  // (the caller guarantees no reader loop is mid-turn — e.g. ~NetStack, where
  // the run-to-block scheduler has no runnable loop) and drains everything.
  std::size_t Synchronize() {
    std::lock_guard<std::mutex> lk(mu_);
    for (SlotState& s : slots_) {
      s.online.store(false, std::memory_order_relaxed);
    }
    return ReclaimLocked();
  }

  std::size_t pending() const {
    std::lock_guard<std::mutex> lk(mu_);
    return pending_.size();
  }

  ~RcuDomain() { Synchronize(); }

 private:
  struct Pending {
    std::uint64_t epoch = 0;
    std::function<void()> reclaim;
  };
  struct alignas(64) SlotState {
    std::atomic<bool> online{false};
    std::atomic<std::uint64_t> announced{0};
  };

  bool GraceElapsed(std::uint64_t target) const {
    for (const SlotState& s : slots_) {
      if (s.online.load(std::memory_order_acquire) &&
          s.announced.load(std::memory_order_acquire) < target) {
        return false;
      }
    }
    return true;
  }

  std::size_t ReclaimLocked() {
    std::size_t ran = 0;
    // Retirements are epoch-ordered; stop at the first one still in grace.
    while (!pending_.empty() && GraceElapsed(pending_.front().epoch)) {
      Pending p = std::move(pending_.front());
      pending_.erase(pending_.begin());
      p.reclaim();
      ++ran;
    }
    return ran;
  }

  std::atomic<std::uint64_t> epoch_{1};
  std::array<SlotState, kMaxSlots> slots_;
  mutable std::mutex mu_;
  std::vector<Pending> pending_;
};

// Copy-on-write map published through an RcuDomain. Readers: Read() is one
// acquire load; the returned snapshot is valid until the reader's next
// Quiescent announcement. Writers: serialized on the registry's own mutex,
// each mutation copies the current map, applies the change, publishes the
// copy and retires the old version into the domain.
template <typename K, typename V>
class RcuRegistry {
 public:
  using Map = std::map<K, V>;

  explicit RcuRegistry(RcuDomain* domain)
      : domain_(domain), current_(new Map()) {}

  ~RcuRegistry() {
    // The domain outlives the registry in every embedding here; retired
    // versions drain through it. The live version dies with us.
    delete current_.load(std::memory_order_relaxed);
  }

  RcuRegistry(const RcuRegistry&) = delete;
  RcuRegistry& operator=(const RcuRegistry&) = delete;

  // Lock-free reader snapshot (demux hot path).
  const Map* Read() const { return current_.load(std::memory_order_acquire); }

  // Generic serialized copy-on-write mutation. |mutate| runs against a
  // private copy; the copy is published whole.
  template <typename Fn>
  void Update(Fn&& mutate) {
    std::lock_guard<std::mutex> lk(writer_mu_);
    const Map* old = current_.load(std::memory_order_relaxed);
    Map* next = new Map(*old);
    mutate(*next);
    current_.store(next, std::memory_order_release);
    domain_->Retire([old] { delete old; });
  }

  void Insert(const K& key, V value) {
    Update([&](Map& m) { m.insert_or_assign(key, std::move(value)); });
  }
  void Erase(const K& key) {
    Update([&](Map& m) { m.erase(key); });
  }

  bool empty() const { return Read()->empty(); }
  std::size_t size() const { return Read()->size(); }

 private:
  RcuDomain* domain_;
  std::mutex writer_mu_;
  std::atomic<const Map*> current_;
};

}  // namespace uklock

#endif  // UKLOCK_RCU_H_
