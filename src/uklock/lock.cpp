#include "uklock/lock.h"

namespace uklock {

void Mutex::Lock() {
  if (!config_.threading) {
    // Single-context configuration: the lock can never be contended, the
    // operation compiles down to bookkeeping (paper: "some of the primitives
    // can be completely compiled out").
    locked_ = true;
    return;
  }
  while (locked_) {
    ++contended_;
    waiters_.Wait();
  }
  locked_ = true;
  owner_ = sched_->current();
}

bool Mutex::TryLock() {
  if (locked_) {
    return false;
  }
  locked_ = true;
  owner_ = config_.threading ? sched_->current() : nullptr;
  return true;
}

void Mutex::Unlock() {
  locked_ = false;
  owner_ = nullptr;
  if (config_.threading) {
    waiters_.Wake(1);
  }
}

void Semaphore::Down() {
  if (!config_.threading) {
    --count_;
    return;
  }
  while (count_ <= 0) {
    waiters_.Wait();
  }
  --count_;
}

bool Semaphore::TryDown() {
  if (count_ <= 0) {
    return false;
  }
  --count_;
  return true;
}

void Semaphore::Up() {
  ++count_;
  if (config_.threading) {
    waiters_.Wake(1);
  }
}

}  // namespace uklock
