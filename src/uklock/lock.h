// uklock/lock.h - synchronization primitives compiled per configuration (§3.3).
//
// uklock picks the implementation along two configuration dimensions:
// threading on/off and multi-core on/off. Without threading the primitives
// compile down to counters (mutual exclusion is vacuous in a single
// run-to-completion context) but still *check* usage so tests catch
// double-unlock bugs; with threading they block on uksched wait queues. The
// multi-core dimension exists in the config (the paper's spin/RCU case) but,
// like Unikraft at publication time, only single-core is implemented.
#ifndef UKLOCK_LOCK_H_
#define UKLOCK_LOCK_H_

#include <cstdint>

#include "uksched/scheduler.h"

namespace uklock {

struct Config {
  bool threading = true;
  bool smp = false;  // accepted, not implemented (matches the paper)
};

class Mutex {
 public:
  Mutex(Config config, uksched::Scheduler* sched)
      : config_(config), waiters_(sched), sched_(sched) {}

  void Lock();
  bool TryLock();
  void Unlock();

  bool locked() const { return locked_; }
  std::uint64_t contended_acquires() const { return contended_; }

 private:
  Config config_;
  uksched::WaitQueue waiters_;
  uksched::Scheduler* sched_;
  bool locked_ = false;
  uksched::Thread* owner_ = nullptr;
  std::uint64_t contended_ = 0;
};

class Semaphore {
 public:
  Semaphore(Config config, uksched::Scheduler* sched, std::int64_t initial)
      : config_(config), waiters_(sched), count_(initial) {}

  void Down();      // P: blocks when count would go negative
  bool TryDown();
  void Up();        // V

  std::int64_t count() const { return count_; }

 private:
  Config config_;
  uksched::WaitQueue waiters_;
  std::int64_t count_;
};

// RAII guard in the style the C++ Core Guidelines require for lock usage.
class MutexGuard {
 public:
  explicit MutexGuard(Mutex& m) : m_(m) { m_.Lock(); }
  ~MutexGuard() { m_.Unlock(); }
  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;

 private:
  Mutex& m_;
};

}  // namespace uklock

#endif  // UKLOCK_LOCK_H_
