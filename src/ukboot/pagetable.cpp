#include "ukboot/pagetable.h"

#include <cstring>

#include "ukarch/align.h"

namespace ukboot {

namespace {

constexpr std::uint64_t kPageBytes = 4096;
constexpr std::uint64_t k2MBytes = 2ull << 20;

unsigned IndexAt(std::uint64_t vaddr, int level) {
  // level 3 = PML4, 2 = PDPT, 1 = PD, 0 = PT
  return static_cast<unsigned>((vaddr >> (12 + 9 * level)) & 0x1ff);
}

}  // namespace

PageTableBuilder::PageTableBuilder(ukplat::MemRegion* mem) : mem_(mem) {}

std::uint64_t PageTableBuilder::AllocTablePage() {
  std::uint64_t gpa = mem_->Carve(kPageBytes, kPageBytes);
  if (gpa == ukplat::MemRegion::kBadGpa) {
    return kBadGpa;
  }
  std::byte* p = mem_->At(gpa, kPageBytes);
  std::memset(p, 0, kPageBytes);  // hardware requires non-present entries zeroed
  ++pages_allocated_;
  return gpa;
}

std::uint64_t PageTableBuilder::CreateRoot() { return AllocTablePage(); }

std::uint64_t PageTableBuilder::EnsureTable(std::uint64_t table, unsigned idx) {
  std::uint64_t entry_gpa = table + idx * 8;
  std::uint64_t entry = mem_->Read<std::uint64_t>(entry_gpa);
  if ((entry & kPtePresent) != 0) {
    return entry & kPteAddrMask;
  }
  std::uint64_t child = AllocTablePage();
  if (child == kBadGpa) {
    return kBadGpa;
  }
  mem_->Write<std::uint64_t>(entry_gpa, child | kPtePresent | kPteWrite);
  ++entries_written_;
  return child;
}

bool PageTableBuilder::MapRange(std::uint64_t root, std::uint64_t start, std::uint64_t len,
                                LeafSize leaf, std::uint64_t flags) {
  std::uint64_t step = leaf == LeafSize::k4K ? kPageBytes : k2MBytes;
  std::uint64_t vaddr = ukarch::AlignDown(start, step);
  std::uint64_t end = ukarch::AlignUp(start + len, step);
  for (; vaddr < end; vaddr += step) {
    std::uint64_t pdpt = EnsureTable(root, IndexAt(vaddr, 3));
    if (pdpt == kBadGpa) {
      return false;
    }
    std::uint64_t pd = EnsureTable(pdpt, IndexAt(vaddr, 2));
    if (pd == kBadGpa) {
      return false;
    }
    if (leaf == LeafSize::k2M) {
      std::uint64_t entry_gpa = pd + IndexAt(vaddr, 1) * 8;
      mem_->Write<std::uint64_t>(entry_gpa, (vaddr & kPteAddrMask) | flags | kPtePageSize);
      ++entries_written_;
      continue;
    }
    std::uint64_t pt = EnsureTable(pd, IndexAt(vaddr, 1));
    if (pt == kBadGpa) {
      return false;
    }
    std::uint64_t entry_gpa = pt + IndexAt(vaddr, 0) * 8;
    mem_->Write<std::uint64_t>(entry_gpa, (vaddr & kPteAddrMask) | flags);
    ++entries_written_;
  }
  return true;
}

std::optional<std::uint64_t> PageTableBuilder::Walk(std::uint64_t root,
                                                    std::uint64_t vaddr) const {
  std::uint64_t table = root;
  for (int level = 3; level >= 0; --level) {
    std::uint64_t entry = mem_->Read<std::uint64_t>(table + IndexAt(vaddr, level) * 8);
    if ((entry & kPtePresent) == 0) {
      return std::nullopt;
    }
    if (level == 1 && (entry & kPtePageSize) != 0) {
      return (entry & kPteAddrMask) + (vaddr & (k2MBytes - 1));
    }
    if (level == 0) {
      return (entry & kPteAddrMask) + (vaddr & (kPageBytes - 1));
    }
    table = entry & kPteAddrMask;
  }
  return std::nullopt;
}

bool PageTableBuilder::Unmap(std::uint64_t root, std::uint64_t vaddr) {
  std::uint64_t table = root;
  for (int level = 3; level >= 0; --level) {
    std::uint64_t entry_gpa = table + IndexAt(vaddr, level) * 8;
    std::uint64_t entry = mem_->Read<std::uint64_t>(entry_gpa);
    if ((entry & kPtePresent) == 0) {
      return false;
    }
    if (level == 0 || (level == 1 && (entry & kPtePageSize) != 0)) {
      mem_->Write<std::uint64_t>(entry_gpa, 0);
      return true;
    }
    table = entry & kPteAddrMask;
  }
  return false;
}

}  // namespace ukboot
