// ukboot/pagetable.h - x86_64 4-level page-table builder (§6.1, Fig 21).
//
// Unikraft ships two paging micro-libraries: a *static* one where the binary
// embeds a pre-initialized page table and boot only points CR3 at it, and a
// *dynamic* one that populates the whole hierarchy at boot so the guest can
// later mmap/unmap. We build real PML4/PDPT/PD/PT hierarchies inside guest
// memory with correct entry encodings, 4 KiB and 2 MiB leaf support, and a
// software walker used by tests and by the dynamic mapping path.
#ifndef UKBOOT_PAGETABLE_H_
#define UKBOOT_PAGETABLE_H_

#include <cstdint>
#include <optional>

#include "ukplat/memregion.h"

namespace ukboot {

// x86_64 PTE flag bits (Intel SDM Vol 3A §4.5).
inline constexpr std::uint64_t kPtePresent = 1ull << 0;
inline constexpr std::uint64_t kPteWrite = 1ull << 1;
inline constexpr std::uint64_t kPteUser = 1ull << 2;
inline constexpr std::uint64_t kPtePageSize = 1ull << 7;  // PS: 2MiB/1GiB leaf
inline constexpr std::uint64_t kPteNx = 1ull << 63;
inline constexpr std::uint64_t kPteAddrMask = 0x000ffffffffff000ull;

enum class LeafSize { k4K, k2M };

class PageTableBuilder {
 public:
  // Page-table pages are carved from |mem|; mappings target gpa==vaddr
  // (identity map), which is what a unikernel boots with.
  explicit PageTableBuilder(ukplat::MemRegion* mem);

  // Creates an empty root (PML4). Returns the root gpa or kBadGpa on OOM.
  std::uint64_t CreateRoot();

  // Identity-maps [start, start+len) with leaves of |leaf| size. Rounds the
  // range outward to leaf boundaries. Returns false on OOM.
  bool MapRange(std::uint64_t root, std::uint64_t start, std::uint64_t len, LeafSize leaf,
                std::uint64_t flags = kPtePresent | kPteWrite);

  // Software page walk: returns the physical address |vaddr| translates to,
  // or nullopt if not mapped.
  std::optional<std::uint64_t> Walk(std::uint64_t root, std::uint64_t vaddr) const;

  // Unmaps a single leaf covering |vaddr| (used by the dynamic paging path).
  bool Unmap(std::uint64_t root, std::uint64_t vaddr);

  std::uint64_t pages_allocated() const { return pages_allocated_; }
  std::uint64_t entries_written() const { return entries_written_; }

  static constexpr std::uint64_t kBadGpa = ukplat::MemRegion::kBadGpa;

 private:
  std::uint64_t AllocTablePage();
  // Returns gpa of the next-level table for entry |idx| of table at |table|,
  // allocating it when absent. kBadGpa on OOM.
  std::uint64_t EnsureTable(std::uint64_t table, unsigned idx);

  ukplat::MemRegion* mem_;
  std::uint64_t pages_allocated_ = 0;
  std::uint64_t entries_written_ = 0;
};

}  // namespace ukboot

#endif  // UKBOOT_PAGETABLE_H_
