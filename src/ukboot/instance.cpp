#include "ukboot/instance.h"

#include <chrono>

#include "ukarch/align.h"

namespace ukboot {

namespace {

using Clk = std::chrono::steady_clock;

double ElapsedNs(Clk::time_point start) {
  return std::chrono::duration<double, std::nano>(Clk::now() - start).count();
}

const char* StageName(InitStage s) {
  switch (s) {
    case InitStage::kEarly: return "early";
    case InitStage::kPlat: return "plat";
    case InitStage::kBus: return "bus";
    case InitStage::kRootfs: return "rootfs";
    case InitStage::kSys: return "sys";
    case InitStage::kLate: return "late";
  }
  return "?";
}

}  // namespace

Instance::Instance(InstanceConfig config)
    : config_(std::move(config)),
      clock_(config_.cost_model),
      mem_(config_.memory_bytes) {}

Instance::~Instance() = default;

void Instance::RegisterInit(InitStage stage, std::string init_name,
                            std::function<ukarch::Status(Instance&)> fn) {
  inittab_.push_back(InitEntry{stage, std::move(init_name), std::move(fn)});
}

ukarch::Status Instance::SetupPaging(BootReport* report) {
  auto start = Clk::now();
  if (config_.paging == PagingMode::kNone) {
    // 32-bit protected mode: no paging at all (last paragraph of §6.1).
    report->stages.push_back({"plat:nopaging", ElapsedNs(start)});
    return ukarch::Status::kOk;
  }
  pt_ = std::make_unique<PageTableBuilder>(&mem_);
  pt_root_ = pt_->CreateRoot();
  if (pt_root_ == PageTableBuilder::kBadGpa) {
    return ukarch::Status::kNoMem;
  }
  if (config_.paging == PagingMode::kStatic) {
    // The image ships a pre-built table; boot just installs it. We build the
    // minimal table covering the first 2 MiB (where boot code lives) to model
    // the constant-time CR3 switch, independent of guest memory size.
    if (!pt_->MapRange(pt_root_, 0, 2ull << 20, LeafSize::k2M)) {
      return ukarch::Status::kNoMem;
    }
    report->stages.push_back({"plat:staticpt", ElapsedNs(start)});
    return ukarch::Status::kOk;
  }
  // Dynamic mode: populate the full hierarchy for all of guest memory — 4 KiB
  // leaves for the first 2 MiB (fine-grained boot region), 2 MiB beyond.
  std::uint64_t first = config_.memory_bytes < (2ull << 20)
                            ? config_.memory_bytes
                            : (2ull << 20);
  if (!pt_->MapRange(pt_root_, 0, first, LeafSize::k4K)) {
    return ukarch::Status::kNoMem;
  }
  if (config_.memory_bytes > first &&
      !pt_->MapRange(pt_root_, first, config_.memory_bytes - first, LeafSize::k2M)) {
    return ukarch::Status::kNoMem;
  }
  report->stages.push_back({"plat:dynamicpt", ElapsedNs(start)});
  return ukarch::Status::kOk;
}

ukarch::Status Instance::SetupAllocator(BootReport* report) {
  auto start = Clk::now();
  // Reserve a device/ring area in front of the heap, like the memregion lists
  // a platform hands to ukboot. The rest of guest RAM becomes the heap.
  constexpr std::size_t kDeviceArea = 256 * 1024;
  std::uint64_t heap_gpa = mem_.Carve(0, 4096);
  std::size_t remaining =
      mem_.size() > heap_gpa ? mem_.size() - static_cast<std::size_t>(heap_gpa) : 0;
  if (remaining <= kDeviceArea + 4096) {
    return ukarch::Status::kNoMem;
  }
  std::size_t heap_len = remaining - kDeviceArea;
  std::uint64_t base_gpa = mem_.Carve(heap_len, 4096);
  if (base_gpa == ukplat::MemRegion::kBadGpa) {
    return ukarch::Status::kNoMem;
  }
  std::byte* base = mem_.At(base_gpa, heap_len);
  heap_ = ukalloc::CreateAllocator(config_.allocator, base, heap_len);
  if (heap_ == nullptr) {
    return ukarch::Status::kNoMem;
  }
  // Probe: the boot fails here if the backend could not set itself up in the
  // space available (tiny heaps), which is exactly Fig 11's failure mode.
  void* probe = heap_->Malloc(64);
  if (probe == nullptr) {
    return ukarch::Status::kNoMem;
  }
  heap_->Free(probe);
  report->stages.push_back({std::string("alloc:") + heap_->name(), ElapsedNs(start)});
  return ukarch::Status::kOk;
}

ukarch::Status Instance::SetupScheduler(BootReport* report) {
  if (!config_.enable_scheduler) {
    return ukarch::Status::kOk;  // run-to-completion unikernel (§3.3)
  }
  auto start = Clk::now();
  if (config_.preemptive) {
    sched_ = std::make_unique<uksched::PreemptScheduler>(heap_.get(), &clock_);
  } else {
    sched_ = std::make_unique<uksched::CoopScheduler>(heap_.get(), &clock_);
  }
  report->stages.push_back({std::string("sched:") + sched_->name(), ElapsedNs(start)});
  return ukarch::Status::kOk;
}

BootReport Instance::Boot() {
  BootReport report;
  report.vmm_us = config_.vmm.LaunchUs(config_.nics);
  auto boot_start = Clk::now();

  ukarch::Status st = SetupPaging(&report);
  if (!Ok(st)) {
    report.error = std::string("paging: ") + ukarch::StatusName(st);
    return report;
  }
  st = SetupAllocator(&report);
  if (!Ok(st)) {
    report.error = std::string("allocator: ") + ukarch::StatusName(st);
    return report;
  }
  st = SetupScheduler(&report);
  if (!Ok(st)) {
    report.error = std::string("scheduler: ") + ukarch::StatusName(st);
    return report;
  }

  // Constructor table, grouped by stage in declared order.
  for (InitStage stage : {InitStage::kEarly, InitStage::kPlat, InitStage::kBus,
                          InitStage::kRootfs, InitStage::kSys, InitStage::kLate}) {
    for (InitEntry& entry : inittab_) {
      if (entry.stage != stage) {
        continue;
      }
      auto start = Clk::now();
      st = entry.fn(*this);
      report.stages.push_back(
          {std::string(StageName(stage)) + ":" + entry.name, ElapsedNs(start)});
      if (!Ok(st)) {
        report.error = entry.name + ": " + ukarch::StatusName(st);
        return report;
      }
    }
  }

  report.guest_us = ElapsedNs(boot_start) / 1e3;
  report.ok = true;
  booted_ = true;
  ++generation_;
  return report;
}

void Instance::Shutdown() {
  // Reverse boot order: the scheduler's stacks and the page table both live
  // inside the heap/guest RAM, so they go first, then the heap itself, then
  // the RAM is wiped for the next boot.
  sched_.reset();
  heap_.reset();
  pt_.reset();
  pt_root_ = PageTableBuilder::kBadGpa;
  mem_.Reset();
  booted_ = false;
}

}  // namespace ukboot
