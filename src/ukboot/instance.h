// ukboot/instance.h - a running unikernel: guest RAM, boot sequence, inittab.
//
// The ukboot micro-library of the paper drives the boot: it receives the heap
// from the platform, initializes the chosen allocator with base+len, brings up
// the scheduler, then walks the constructor table (inittab) that other
// micro-libraries registered entries in, and finally calls main(). Instance
// reproduces that lifecycle over simulated guest RAM, with per-stage timing so
// Fig 14's stacked boot-time bars can be regenerated, and real allocation
// failure propagation so Fig 11's minimum-memory search is honest.
#ifndef UKBOOT_INSTANCE_H_
#define UKBOOT_INSTANCE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ukalloc/registry.h"
#include "ukarch/status.h"
#include "ukboot/pagetable.h"
#include "ukplat/clock.h"
#include "ukplat/memregion.h"
#include "ukplat/vmm.h"
#include "uksched/scheduler.h"

namespace ukboot {

// Guest paging strategies from §6.1: static pre-initialized page table,
// dynamically populated page table, or none (32-bit protected mode).
enum class PagingMode { kStatic, kDynamic, kNone };

struct InstanceConfig {
  std::string name = "unikernel";
  std::size_t memory_bytes = 32ull << 20;
  ukalloc::Backend allocator = ukalloc::Backend::kTlsf;
  bool enable_scheduler = true;
  bool preemptive = false;
  PagingMode paging = PagingMode::kStatic;
  ukplat::VmmModel vmm = ukplat::VmmModel::Qemu();
  int nics = 0;
  ukplat::CostModel cost_model{};
};

// Inittab classes in boot order (mirrors Unikraft's uk_inittab levels).
enum class InitStage { kEarly, kPlat, kBus, kRootfs, kSys, kLate };

struct BootStageTime {
  std::string name;
  double real_ns = 0.0;  // measured host time of the real init work
};

struct BootReport {
  bool ok = false;
  std::string error;
  double vmm_us = 0.0;        // modeled monitor share (Fig 10's lower bar)
  double guest_us = 0.0;      // measured guest-side boot time
  std::vector<BootStageTime> stages;

  double TotalUs() const { return vmm_us + guest_us; }
};

class Instance {
 public:
  explicit Instance(InstanceConfig config);
  ~Instance();

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  // Registers a constructor-table entry. Must be called before Boot().
  // Entries run grouped by stage, in registration order within a stage.
  void RegisterInit(InitStage stage, std::string init_name,
                    std::function<ukarch::Status(Instance&)> fn);

  // Runs the boot sequence: paging -> allocator -> scheduler -> inittab.
  // Call again after Shutdown() to reboot the same config: the inittab is
  // retained and replayed, and the report carries fresh per-stage timings.
  BootReport Boot();
  bool booted() const { return booted_; }

  // Tears the instance down to its pre-boot state: scheduler, heap and page
  // table are destroyed in reverse boot order and guest RAM is wiped (carve
  // pointer rewound, bytes zeroed). Everything the instance's inittab built
  // on the heap — stacks, sockets, servers — must be destroyed by its owner
  // *before* Shutdown(); afterwards heap() is null until the next Boot().
  void Shutdown();

  // Boots completed over this instance's lifetime (bumped by each successful
  // Boot); lets tests assert a reboot actually re-ran the sequence.
  int generation() const { return generation_; }

  // Accessors for the assembled system. heap() is null before Boot().
  ukplat::MemRegion& mem() { return mem_; }
  ukplat::Clock& clock() { return clock_; }
  ukalloc::Allocator* heap() { return heap_.get(); }
  uksched::Scheduler* scheduler() { return sched_.get(); }
  const InstanceConfig& config() const { return config_; }
  std::uint64_t pagetable_root() const { return pt_root_; }
  PageTableBuilder* pagetable() { return pt_ ? pt_.get() : nullptr; }

  // Bytes still carveable for rings and DMA areas after boot reservations.
  std::uint64_t CarveDeviceArea(std::size_t bytes, std::size_t align) {
    return mem_.Carve(bytes, align);
  }

 private:
  ukarch::Status SetupPaging(BootReport* report);
  ukarch::Status SetupAllocator(BootReport* report);
  ukarch::Status SetupScheduler(BootReport* report);

  InstanceConfig config_;
  ukplat::Clock clock_;
  ukplat::MemRegion mem_;
  std::unique_ptr<PageTableBuilder> pt_;
  std::uint64_t pt_root_ = PageTableBuilder::kBadGpa;
  std::unique_ptr<ukalloc::Allocator> heap_;
  std::unique_ptr<uksched::Scheduler> sched_;

  struct InitEntry {
    InitStage stage;
    std::string name;
    std::function<ukarch::Status(Instance&)> fn;
  };
  std::vector<InitEntry> inittab_;
  bool booted_ = false;
  int generation_ = 0;
};

}  // namespace ukboot

#endif  // UKBOOT_INSTANCE_H_
