#include "ukbuild/linker.h"

#include <algorithm>
#include <deque>

namespace ukbuild {

const char* PlatformName(Platform p) {
  switch (p) {
    case Platform::kKvm: return "kvm";
    case Platform::kXen: return "xen";
    case Platform::kLinuxu: return "linuxu";
  }
  return "?";
}

const LinkedLib* Image::FindLib(const std::string& name) const {
  for (const LinkedLib& l : libs) {
    if (l.name == name) {
      return &l;
    }
  }
  return nullptr;
}

std::size_t DepGraph::OutDegree(const std::string& node) const {
  std::size_t n = 0;
  for (const DepEdge& e : edges) {
    if (e.from == node) {
      ++n;
    }
  }
  return n;
}

std::string DepGraph::ToDot() const {
  std::string dot = "digraph unikraft {\n";
  for (const std::string& n : nodes) {
    dot += "  \"" + n + "\";\n";
  }
  for (const DepEdge& e : edges) {
    dot += "  \"" + e.from + "\" -> \"" + e.to + "\";\n";
  }
  dot += "}\n";
  return dot;
}

const MicroLib* Linker::PlatformLib(Platform p) const {
  switch (p) {
    case Platform::kKvm: return registry_->Find("plat-kvm");
    case Platform::kXen: return registry_->Find("plat-xen");
    case Platform::kLinuxu: return registry_->Find("plat-linuxu");
  }
  return nullptr;
}

std::vector<std::string> Linker::ResolveClosure(const Config& config) const {
  const AppManifest* app = registry_->FindApp(config.app);
  const MicroLib* plat = PlatformLib(config.platform);
  if (app == nullptr || plat == nullptr) {
    return {};
  }
  std::set<std::string> visited;
  std::deque<std::string> work;
  work.push_back(app->app_lib);
  work.push_back(plat->name);
  for (const std::string& extra : app->extra_libs) {
    work.push_back(extra);
  }
  while (!work.empty()) {
    std::string name = work.front();
    work.pop_front();
    if (visited.contains(name)) {
      continue;
    }
    const MicroLib* ml = registry_->Find(name);
    if (ml == nullptr) {
      continue;  // unknown deps are configuration errors caught by tests
    }
    visited.insert(name);
    for (const std::string& dep : ml->deps) {
      work.push_back(dep);
    }
  }
  std::vector<std::string> out(visited.begin(), visited.end());
  std::sort(out.begin(), out.end());
  return out;
}

Image Linker::Link(const Config& config) const {
  Image image;
  image.app = config.app;
  image.platform = config.platform;

  const AppManifest* app = registry_->FindApp(config.app);
  if (app == nullptr) {
    return image;
  }
  std::set<std::string> features(app->features_used.begin(), app->features_used.end());
  features.insert(config.extra_features.begin(), config.extra_features.end());

  // Fixed image scaffolding a linker always emits (headers, sections, boot
  // stub); Xen images skip the PC boot scaffolding, which is why the paper's
  // Xen helloworld is smaller than KVM's.
  std::uint64_t base_overhead = config.platform == Platform::kKvm ? 34 * 1024
                                : config.platform == Platform::kXen ? 10 * 1024
                                                                    : 16 * 1024;
  image.total_bytes = base_overhead;

  for (const std::string& name : ResolveClosure(config)) {
    const MicroLib* ml = registry_->Find(name);
    LinkedLib linked;
    linked.name = name;
    linked.lib_class = ml->lib_class;
    linked.bytes_before = ml->TotalBytes();
    std::uint64_t kept = 0;
    for (const ObjectFile& obj : ml->objects) {
      bool reachable = obj.feature.empty() || features.contains(obj.feature);
      if (!config.dce) {
        reachable = true;  // without --gc-sections everything stays
      }
      if (reachable) {
        kept += obj.size_bytes;
      } else {
        ++linked.objects_dropped;
      }
    }
    if (config.lto && ml->lto_shrinkable) {
      // Cross-module inlining + identical-code folding on large C bodies:
      // ~22% text shrink, in line with the nginx/redis deltas in Fig 8.
      kept = kept * 78 / 100;
    }
    linked.bytes_after = static_cast<std::uint32_t>(kept);
    image.total_bytes += kept;
    image.libs.push_back(std::move(linked));
  }
  std::sort(image.libs.begin(), image.libs.end(),
            [](const LinkedLib& a, const LinkedLib& b) { return a.name < b.name; });
  return image;
}

DepGraph Linker::Graph(const Config& config) const {
  DepGraph graph;
  std::vector<std::string> closure = ResolveClosure(config);
  std::set<std::string> in_closure(closure.begin(), closure.end());
  graph.nodes = closure;
  for (const std::string& name : closure) {
    const MicroLib* ml = registry_->Find(name);
    for (const std::string& dep : ml->deps) {
      if (in_closure.contains(dep)) {
        graph.edges.push_back(DepEdge{name, dep});
      }
    }
  }
  return graph;
}

const std::vector<OsImageModel>& OtherOsModels() {
  // Fig 9 (stripped, no LTO/DCE) and Fig 11 (minimum memory) constants.
  static const std::vector<OsImageModel> kModels = {
      {"hermitux", 1.3, 0.0, 1.7, 2.8, 7, 0, 13, 10},
      {"linux-user", 1.5, 2.1, 3.6, 5.4, 0, 0, 0, 0},
      {"lupine", 2.1, 2.6, 3.2, 3.9, 4, 10, 11, 21},
      {"mirage", 1.6, 3.3, 0.0, 0.0, 6, 13, 0, 0},
      {"osv", 3.2, 4.5, 5.4, 8.1, 7, 12, 21, 26},
      {"rumprun", 1.8, 2.8, 5.4, 3.7, 5, 8, 13, 20},
      {"docker", 0.0, 0.0, 0.0, 0.0, 5, 12, 21, 26},
      {"linux-microvm", 0.0, 0.0, 0.0, 0.0, 6, 10, 20, 29},
  };
  return kModels;
}

}  // namespace ukbuild
