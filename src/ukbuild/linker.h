// ukbuild/linker.h - configuration resolution + the final link step.
//
// Reproduces what the paper's build system does after menuconfig: resolve the
// selected micro-libraries' dependency closure, apply Dead Code Elimination
// (drop objects whose feature the application never uses — the --gc-sections
// analog) and Link-Time Optimization (cross-module shrink on large C bodies),
// then report the image. Also exports the dependency graph that Figs 2 and 3
// plot, and carries the other-OS image/memory models used by Figs 9 and 11.
#ifndef UKBUILD_LINKER_H_
#define UKBUILD_LINKER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ukbuild/registry.h"

namespace ukbuild {

enum class Platform { kKvm, kXen, kLinuxu };
const char* PlatformName(Platform p);

struct Config {
  std::string app = "helloworld";
  Platform platform = Platform::kKvm;
  bool dce = false;
  bool lto = false;
  // Extra feature toggles (Kconfig options) beyond the app manifest.
  std::vector<std::string> extra_features;
};

struct LinkedLib {
  std::string name;
  LibClass lib_class;
  std::uint32_t bytes_before = 0;
  std::uint32_t bytes_after = 0;  // post DCE/LTO
  std::uint32_t objects_dropped = 0;
};

struct Image {
  std::string app;
  Platform platform;
  std::vector<LinkedLib> libs;
  std::uint64_t total_bytes = 0;

  const LinkedLib* FindLib(const std::string& name) const;
};

struct DepEdge {
  std::string from;
  std::string to;
};

struct DepGraph {
  std::vector<std::string> nodes;
  std::vector<DepEdge> edges;
  std::string ToDot() const;
  std::size_t EdgeCount() const { return edges.size(); }
  std::size_t OutDegree(const std::string& node) const;
};

class Linker {
 public:
  explicit Linker(const Registry* registry) : registry_(registry) {}

  // Resolves the config to its library closure; empty on unknown app/lib.
  std::vector<std::string> ResolveClosure(const Config& config) const;

  // Produces the final image (sizes after DCE/LTO).
  Image Link(const Config& config) const;

  // Dependency graph over the linked libraries (Figs 2 and 3).
  DepGraph Graph(const Config& config) const;

 private:
  const MicroLib* PlatformLib(Platform p) const;
  const Registry* registry_;
};

// Published image sizes and minimum memory of the other systems in Figs 9/11
// (paper-reported constants; our own rows come from Link()).
struct OsImageModel {
  std::string os;
  double hello_mb;
  double nginx_mb;
  double redis_mb;
  double sqlite_mb;
  int hello_min_mb;
  int nginx_min_mb;
  int redis_min_mb;
  int sqlite_min_mb;
};
const std::vector<OsImageModel>& OtherOsModels();

}  // namespace ukbuild

#endif  // UKBUILD_LINKER_H_
