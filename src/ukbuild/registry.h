// ukbuild/registry.h - the micro-library registry behind the Kconfig menu.
//
// Every Unikraft component is a micro-library with its own Makefile/Kconfig
// (§3). Here each is described by a manifest: its objects (name, size, and
// the feature that pulls it in), its dependencies on other micro-libraries,
// and whether LTO can shrink it. The linker (linker.h) consumes these to
// produce images, dependency graphs (Figs 2, 3) and size numbers (Figs 8, 9).
//
// Object sizes are calibrated against the published Unikraft 0.4 image sizes
// so that absolute outputs land near the paper's Fig 8 values.
#ifndef UKBUILD_REGISTRY_H_
#define UKBUILD_REGISTRY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ukbuild {

enum class LibClass { kPlat, kApi, kDriver, kOsPrim, kLibc, kExternal, kApp };
const char* LibClassName(LibClass c);

struct ObjectFile {
  std::string name;
  std::uint32_t size_bytes = 0;
  // Feature that makes this object reachable; "" means always reachable when
  // the library is linked. DCE drops objects whose feature the app never uses.
  std::string feature;
};

struct MicroLib {
  std::string name;
  LibClass lib_class = LibClass::kOsPrim;
  std::vector<ObjectFile> objects;
  std::vector<std::string> deps;        // other micro-libraries
  bool lto_shrinkable = false;          // big C bodies shrink under LTO
  std::uint32_t TotalBytes() const;
};

struct AppManifest {
  std::string name;
  std::string app_lib;                       // micro-library holding app code
  std::vector<std::string> features_used;    // drives DCE
  std::vector<std::string> extra_libs;       // beyond transitive deps
};

class Registry {
 public:
  // Builds the full ukraft registry (platform libs, APIs, drivers,
  // allocators, schedulers, net/fs stacks, libcs, app libs).
  static Registry Default();

  void Add(MicroLib lib);
  void AddApp(AppManifest app);

  const MicroLib* Find(const std::string& name) const;
  const AppManifest* FindApp(const std::string& name) const;
  const std::map<std::string, MicroLib>& libs() const { return libs_; }

 private:
  std::map<std::string, MicroLib> libs_;
  std::map<std::string, AppManifest> apps_;
};

}  // namespace ukbuild

#endif  // UKBUILD_REGISTRY_H_
