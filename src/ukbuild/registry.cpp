#include "ukbuild/registry.h"

namespace ukbuild {

const char* LibClassName(LibClass c) {
  switch (c) {
    case LibClass::kPlat: return "plat";
    case LibClass::kApi: return "api";
    case LibClass::kDriver: return "driver";
    case LibClass::kOsPrim: return "os";
    case LibClass::kLibc: return "libc";
    case LibClass::kExternal: return "external";
    case LibClass::kApp: return "app";
  }
  return "?";
}

std::uint32_t MicroLib::TotalBytes() const {
  std::uint32_t total = 0;
  for (const ObjectFile& o : objects) {
    total += o.size_bytes;
  }
  return total;
}

void Registry::Add(MicroLib lib) { libs_[lib.name] = std::move(lib); }
void Registry::AddApp(AppManifest app) { apps_[app.name] = std::move(app); }

const MicroLib* Registry::Find(const std::string& name) const {
  auto it = libs_.find(name);
  return it == libs_.end() ? nullptr : &it->second;
}

const AppManifest* Registry::FindApp(const std::string& name) const {
  auto it = apps_.find(name);
  return it == apps_.end() ? nullptr : &it->second;
}

Registry Registry::Default() {
  Registry r;
  auto lib = [&r](std::string name, LibClass cls, std::vector<ObjectFile> objs,
                  std::vector<std::string> deps, bool lto = false) {
    r.Add(MicroLib{std::move(name), cls, std::move(objs), std::move(deps), lto});
  };

  // Platform layer (per-platform bootstrapping + bus code).
  lib("plat-kvm", LibClass::kPlat,
      {{"entry64.o", 9 * 1024, ""}, {"traps.o", 7 * 1024, ""},
       {"memregion.o", 6 * 1024, ""}, {"pci.o", 14 * 1024, "pci"},
       {"clock.o", 8 * 1024, ""}},
      {"ukboot"});
  lib("plat-xen", LibClass::kPlat,
      {{"entryxen.o", 6 * 1024, ""}, {"hypercalls.o", 5 * 1024, ""},
       {"grant.o", 9 * 1024, "grant"}, {"clock.o", 6 * 1024, ""}},
      {"ukboot"});
  lib("plat-linuxu", LibClass::kPlat,
      {{"setup.o", 5 * 1024, ""}, {"hostcalls.o", 7 * 1024, ""}},
      {"ukboot"});

  // Boot + arg parsing + debug.
  lib("ukboot", LibClass::kOsPrim,
      {{"boot.o", 8 * 1024, ""}, {"ctors.o", 3 * 1024, ""}},
      {"ukalloc", "ukargparse"});
  lib("ukargparse", LibClass::kOsPrim, {{"argparse.o", 4 * 1024, ""}}, {});
  lib("ukdebug", LibClass::kOsPrim,
      {{"print.o", 10 * 1024, ""}, {"trace.o", 8 * 1024, "trace"},
       {"asserts.o", 4 * 1024, ""}},
      {});

  // Memory allocation: the API plus interchangeable backends.
  lib("ukalloc", LibClass::kApi, {{"alloc.o", 6 * 1024, ""}}, {});
  lib("ukallocbuddy", LibClass::kOsPrim,
      {{"buddy.o", 14 * 1024, ""}, {"bitmap.o", 5 * 1024, ""}}, {"ukalloc"});
  lib("ukalloctlsf", LibClass::kOsPrim, {{"tlsf.o", 13 * 1024, ""}}, {"ukalloc"});
  lib("ukalloctiny", LibClass::kOsPrim, {{"tinyalloc.o", 5 * 1024, ""}}, {"ukalloc"});
  lib("ukallocmimalloc", LibClass::kExternal,
      {{"mimalloc.o", 52 * 1024, ""}, {"mi-os.o", 9 * 1024, ""}},
      {"ukalloc", "pthread-embedded"}, true);
  lib("ukallocregion", LibClass::kOsPrim, {{"region.o", 3 * 1024, ""}}, {"ukalloc"});

  // Scheduling / locking.
  lib("uksched", LibClass::kApi, {{"sched.o", 9 * 1024, ""}, {"thread.o", 8 * 1024, ""}},
      {"ukalloc"});
  lib("ukschedcoop", LibClass::kOsPrim, {{"coop.o", 6 * 1024, ""}}, {"uksched"});
  lib("ukschedpreempt", LibClass::kOsPrim, {{"preempt.o", 9 * 1024, ""}}, {"uksched"});
  lib("uklock", LibClass::kOsPrim,
      {{"mutex.o", 4 * 1024, ""}, {"semaphore.o", 4 * 1024, ""}}, {"uksched"});
  lib("pthread-embedded", LibClass::kExternal,
      {{"pthread.o", 28 * 1024, ""}, {"tls.o", 8 * 1024, ""}}, {"uksched", "uklock"},
      true);

  // Filesystems.
  lib("vfscore", LibClass::kApi,
      {{"vfs.o", 18 * 1024, ""}, {"fdops.o", 12 * 1024, ""},
       {"mount.o", 8 * 1024, ""}},
      {"ukalloc", "uklock"});
  lib("ramfs", LibClass::kOsPrim, {{"ramfs.o", 11 * 1024, ""}}, {"vfscore"});
  lib("9pfs", LibClass::kOsPrim,
      {{"9pclient.o", 16 * 1024, ""}, {"9pproto.o", 10 * 1024, ""}},
      {"vfscore", "uk9pdev"});
  lib("uk9pdev", LibClass::kDriver, {{"9pdev.o", 12 * 1024, ""}}, {"ukbus"});
  lib("shfs", LibClass::kOsPrim, {{"shfs.o", 9 * 1024, ""}}, {"ukalloc"});

  // Block.
  lib("ukblkdev", LibClass::kApi, {{"blkdev.o", 10 * 1024, ""}}, {"ukalloc"});
  lib("virtio-blk", LibClass::kDriver, {{"vblk.o", 9 * 1024, ""}},
      {"ukblkdev", "virtio-core"});

  // Network.
  lib("uknetdev", LibClass::kApi,
      {{"netdev.o", 11 * 1024, ""}, {"netbuf.o", 6 * 1024, ""}}, {"ukalloc"});
  lib("virtio-core", LibClass::kDriver,
      {{"virtqueue.o", 10 * 1024, ""}, {"virtio-bus.o", 8 * 1024, ""}}, {"ukbus"});
  lib("virtio-net", LibClass::kDriver, {{"vnet.o", 12 * 1024, ""}},
      {"uknetdev", "virtio-core"});
  lib("ukbus", LibClass::kOsPrim, {{"bus.o", 5 * 1024, ""}}, {});
  lib("lwip", LibClass::kExternal,
      {{"tcp.o", 91 * 1024, ""}, {"udp.o", 22 * 1024, ""}, {"ip4.o", 34 * 1024, ""},
       {"sockets.o", 48 * 1024, "socket"}, {"dns.o", 18 * 1024, "dns"},
       {"pbuf.o", 16 * 1024, ""}, {"netif.o", 12 * 1024, ""}},
      {"uknetdev", "uklock", "uksched"}, true);

  // POSIX compatibility layer.
  lib("posix-fdtab", LibClass::kOsPrim, {{"fdtab.o", 7 * 1024, ""}}, {"vfscore"});
  lib("posix-process", LibClass::kOsPrim, {{"process.o", 9 * 1024, ""}}, {"uksched"});
  lib("posix-socket", LibClass::kOsPrim, {{"sock.o", 10 * 1024, ""}},
      {"posix-fdtab", "lwip"});
  lib("syscall-shim", LibClass::kApi, {{"shim.o", 12 * 1024, ""}}, {});

  // libc choices.
  lib("nolibc", LibClass::kLibc,
      {{"string.o", 9 * 1024, ""}, {"stdio-min.o", 11 * 1024, ""}},
      {"ukalloc"});
  lib("musl", LibClass::kLibc,
      {{"string.o", 38 * 1024, ""}, {"stdio.o", 74 * 1024, ""},
       {"malloc-api.o", 12 * 1024, ""}, {"locale.o", 46 * 1024, "locale"},
       {"math.o", 88 * 1024, "math"}, {"regex.o", 52 * 1024, "regex"},
       {"time.o", 24 * 1024, ""}, {"network.o", 36 * 1024, "socket"}},
      {"syscall-shim", "ukalloc"}, true);
  lib("newlib", LibClass::kLibc,
      {{"string.o", 42 * 1024, ""}, {"stdio.o", 96 * 1024, ""},
       {"math.o", 102 * 1024, "math"}, {"reent.o", 28 * 1024, ""}},
      {"syscall-shim", "ukalloc"}, true);

  // Application bodies (externally built archives, §4).
  lib("app-helloworld", LibClass::kApp, {{"main.o", 2 * 1024, ""}}, {"nolibc"});
  lib("app-nginx", LibClass::kApp,
      {{"core.o", 310 * 1024, ""}, {"http.o", 260 * 1024, ""},
       {"modules.o", 240 * 1024, "modules"}, {"mail.o", 120 * 1024, "mail"},
       {"stream.o", 96 * 1024, "stream"}},
      {"musl", "lwip", "posix-socket", "vfscore", "ramfs", "pthread-embedded"}, true);
  lib("app-redis", LibClass::kApp,
      {{"server.o", 270 * 1024, ""}, {"datatypes.o", 230 * 1024, ""},
       {"cluster.o", 140 * 1024, "cluster"}, {"scripting.o", 160 * 1024, "lua"},
       {"aof-rdb.o", 100 * 1024, "persistence"}},
      {"musl", "lwip", "posix-socket", "vfscore", "ramfs", "pthread-embedded"}, true);
  lib("app-sqlite", LibClass::kApp,
      {{"btree.o", 260 * 1024, ""}, {"vdbe.o", 290 * 1024, ""},
       {"parse.o", 210 * 1024, ""}, {"fts.o", 220 * 1024, "fts"},
       {"rtree.o", 90 * 1024, "rtree"}},
      {"musl", "vfscore", "ramfs"}, true);

  r.AddApp(AppManifest{"helloworld", "app-helloworld", {}, {"ukdebug"}});
  r.AddApp(AppManifest{"nginx", "app-nginx", {"socket"},
                       {"ukschedcoop", "ukalloctlsf", "virtio-net", "ukdebug",
                        "posix-process", "ukargparse"}});
  r.AddApp(AppManifest{"redis", "app-redis", {"socket"},
                       {"ukschedcoop", "ukallocmimalloc", "virtio-net", "ukdebug",
                        "posix-process", "ukargparse"}});
  r.AddApp(AppManifest{"sqlite", "app-sqlite", {},
                       {"ukalloctlsf", "ukdebug", "ukargparse"}});
  return r;
}

}  // namespace ukbuild
