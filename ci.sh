#!/usr/bin/env bash
# Tier-1 verify with warnings-as-errors on src/: configure, build, ctest —
# then the same test suite again under AddressSanitizer + UBSan, which is
# what catches netbuf lifetime/offset bugs (e.g. the TCP Output() OOB read
# when a FIN was in flight) that pass unnoticed in a plain build. The
# sanitizer leg runs with UKRAFT_QUEUES=2 so every TestBed-based test (posix,
# apps, integration) exercises the RSS-sharded multi-queue datapath — queue
# steering, per-queue pools and the demux sharding get ASan/UBSan coverage on
# every push, not just the dedicated multi-queue suite.
# Usage: ./ci.sh [build-dir]   (default: build-ci; sanitizer leg appends -asan)
set -euo pipefail

BUILD_DIR="${1:-build-ci}"
ASAN_BUILD_DIR="${BUILD_DIR}-asan"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DUKRAFT_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

cmake -B "$ASAN_BUILD_DIR" -S . -DUKRAFT_WERROR=ON -DUKRAFT_SANITIZE=ON
cmake --build "$ASAN_BUILD_DIR" -j "$JOBS"
UBSAN_OPTIONS="halt_on_error=1" ASAN_OPTIONS="detect_leaks=0" UKRAFT_QUEUES=2 \
  ctest --test-dir "$ASAN_BUILD_DIR" --output-on-failure -j "$JOBS"

echo "ci: OK (src/ built with -Wall -Wextra -Werror; tests passed plain and under ASan+UBSan with UKRAFT_QUEUES=2)"
