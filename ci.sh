#!/usr/bin/env bash
# Tier-1 verify with warnings-as-errors on src/: configure, build, ctest —
# then the same test suite again under AddressSanitizer + UBSan, which is
# what catches netbuf lifetime/offset bugs (e.g. the TCP Output() OOB read
# when a FIN was in flight) that pass unnoticed in a plain build. The
# sanitizer leg runs with UKRAFT_QUEUES=2 so every TestBed-based test (posix,
# apps, integration) exercises the RSS-sharded multi-queue datapath — queue
# steering, per-queue pools and the demux sharding get ASan/UBSan coverage on
# every push, not just the dedicated multi-queue suite. The leg finishes with
# a blocking-mode bench pass (--wait: uksched wait queues + RX interrupt
# arming over 2 queues) so the wakeup path gets sanitizer coverage too.
# SMP legs: the plain suite reruns at UKRAFT_QUEUES=4 plus the RSS-scaling
# throughput gate, and a ThreadSanitizer flavor covers the sharded suites
# (SPSC rings, doorbells, per-queue loops).
# Fleet legs: ctest is split into tier1 (fast, everything) and tier2 (the
# multi-instance fleet scenarios); the fleet-scaling bench gates >=3x churn
# at 4 backends plus cold-start-under-load, and reruns under ASan+UBSan.
# Markdown hygiene: every relative link in every *.md must resolve.
# Usage: ./ci.sh [build-dir]   (default: build-ci; sanitizer legs append
# -asan / -tsan)
set -euo pipefail

BUILD_DIR="${1:-build-ci}"
ASAN_BUILD_DIR="${BUILD_DIR}-asan"
JOBS="$(nproc 2>/dev/null || echo 4)"

# ---- markdown link check ----------------------------------------------------
# Relative link targets in [text](target) must exist on disk (http(s)/mailto
# and pure-anchor links are skipped; "#section" suffixes are stripped).
check_md_links() {
  local fail=0 md dir link target
  while IFS= read -r md; do
    dir="$(dirname "$md")"
    while IFS= read -r link; do
      [[ -z "$link" ]] && continue
      # Legal markdown variants: strip an optional quoted title suffix and
      # <angle brackets> around the target before testing existence.
      link="$(printf '%s' "$link" | sed -E 's/[[:space:]]+"[^"]*"[[:space:]]*$//; s/^<(.*)>$/\1/')"
      case "$link" in
        http://*|https://*|mailto:*|\#*) continue ;;
      esac
      target="${link%%#*}"
      [[ -z "$target" ]] && continue
      if [[ ! -e "$dir/$target" ]]; then
        echo "ci: broken markdown link in $md -> $link" >&2
        fail=1
      fi
    done < <(grep -oE '\]\([^)]+\)' "$md" 2>/dev/null | sed -E 's/^\]\(//; s/\)$//' || true)
  done < <(find . -name '*.md' -not -path './build*' -not -path './.git/*')
  return "$fail"
}
check_md_links
echo "ci: markdown links OK"

cmake -B "$BUILD_DIR" -S . -DUKRAFT_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
# Fast feedback first: tier1 (everything but the fleet scenarios) fails the
# push within seconds, then tier2 runs the heavyweight multi-instance
# scenarios — balancer steering, kill/respawn cold-start, churn at scale.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L tier1
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L tier2

# SMP scale-out leg: the same suite at full RSS width (every TestBed-based
# test runs 4 queues / 4 shards), then the cores-vs-throughput gate — the
# scaling bench self-checks >=1.7x aggregate throughput at 2 queues and >=3x
# at 4 vs 1, with zero TX-pool churn on every shard, and emits
# BENCH_rss_scaling.json next to the build dir.
UKRAFT_QUEUES=4 ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
(cd "$BUILD_DIR" && ./bench_fig_rss_scaling)

# Fleet scaling gate: churn through the L4 balancer must reach >=3x the
# 1-backend rate at 4 backends with zero aborted connections, and the
# cold-start leg must see a killed backend's replacement serve its first
# reply while the survivors never stop (emits BENCH_fleet_scaling.json).
(cd "$BUILD_DIR" && ./bench_fleet_scaling)

# Persistence gate: the per-turn AOF must hold >=70% of the AOF-off SET
# throughput (batching amortizes the log to one write+flush per turn), and
# replay-on-boot must restore snapshot + AOF tail exactly at >=10k keys/s
# across 1k/5k/20k-key datasets (emits BENCH_persist.json). The persistence
# unit suite (persist_test, storage_test) already rides every ctest tier1 leg
# above, and the durable-reboot fleet scenario rides tier2.
(cd "$BUILD_DIR" && ./bench_persist)

cmake -B "$ASAN_BUILD_DIR" -S . -DUKRAFT_WERROR=ON -DUKRAFT_SANITIZE=ON
cmake --build "$ASAN_BUILD_DIR" -j "$JOBS"
UBSAN_OPTIONS="halt_on_error=1" ASAN_OPTIONS="detect_leaks=0" UKRAFT_QUEUES=2 \
  ctest --test-dir "$ASAN_BUILD_DIR" --output-on-failure -j "$JOBS"

# Blocking-mode bench leg: wait queues, interrupt arming and the scheduler's
# idle clock jumps under ASan+UBSan, sharded across 2 queues.
UBSAN_OPTIONS="halt_on_error=1" ASAN_OPTIONS="detect_leaks=0" UKRAFT_QUEUES=2 \
  "$ASAN_BUILD_DIR"/bench_fig_idle_wakeup --wait --queues 2 --rounds 40

# Event-loop legs: the unified readiness path (uknet edges -> posix epoll ->
# apps::EventLoop) serving 64 concurrent TCP connections from one blocked
# thread, and the socket-batch kvstore sleeping in EpollWait between bursts.
# Both binaries self-check (idle spins == 0, heap delta == 0) and fail the
# leg on violation; UKRAFT_QUEUES=2 shards the TestBed-based kvstore leg.
UBSAN_OPTIONS="halt_on_error=1" ASAN_OPTIONS="detect_leaks=0" UKRAFT_QUEUES=2 \
  "$ASAN_BUILD_DIR"/bench_tab5_tcp_echo --eventloop
UBSAN_OPTIONS="halt_on_error=1" ASAN_OPTIONS="detect_leaks=0" UKRAFT_QUEUES=2 \
  "$ASAN_BUILD_DIR"/bench_tab4_kvstore --eventloop

# Fleet leg under ASan+UBSan: the full multi-instance lifecycle — Instance
# boot/shutdown/reboot, wire port reset, balancer flow teardown on MarkDown,
# per-connection splice state — is exactly where lifetime bugs would hide.
# The scenario suite and the scaling/cold-start gate both run sanitized.
UBSAN_OPTIONS="halt_on_error=1" ASAN_OPTIONS="detect_leaks=0" \
  ctest --test-dir "$ASAN_BUILD_DIR" --output-on-failure -L tier2
(cd "$ASAN_BUILD_DIR" && UBSAN_OPTIONS="halt_on_error=1" ASAN_OPTIONS="detect_leaks=0" \
  ./bench_fleet_scaling)

# Persistence leg under ASan+UBSan: snapshot chunking, COW-lite pre-images,
# AOF segment rotation and the CRC replay path all shuffle byte buffers
# through the blockfs bounce region — lifetime/offset territory.
(cd "$ASAN_BUILD_DIR" && UBSAN_OPTIONS="halt_on_error=1" ASAN_OPTIONS="detect_leaks=0" \
  ./bench_persist)

# TCP loss-recovery leg: a 1 MB echo at 1% deterministic frame loss, modern
# (NewReno + SACK + delayed ACKs + window scaling) vs legacy stop-and-wait.
# The binary self-checks: modern must beat legacy by >=5x, recover via fast
# retransmit (not RTO stalls), and complete every retransmission on the
# retained-segment zero-copy path (rexmit_copy_allocs == 0). Running it under
# ASan+UBSan puts the recovery machinery -- scoreboard marking, retained-netbuf
# re-emission, OOO range merging -- under lifetime/offset checking on every
# push, and emits BENCH_tab5_tcp_loss.json next to the build dir.
UBSAN_OPTIONS="halt_on_error=1" ASAN_OPTIONS="detect_leaks=0" \
  "$ASAN_BUILD_DIR"/bench_tab5_tcp_echo --loss

# ThreadSanitizer flavor over the sharded/concurrency suites: the SPSC ring
# acquire/release protocol, the per-queue doorbells and the 4-shard scale
# test are exactly the code whose correctness on real SMP rests on memory
# ordering; the scheduler's fiber annotations make the ucontext switches
# visible to TSan so cross-loop accesses are actually checked.
TSAN_BUILD_DIR="${BUILD_DIR}-tsan"
cmake -B "$TSAN_BUILD_DIR" -S . -DUKRAFT_WERROR=ON -DUKRAFT_SANITIZE=tsan
cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" --target \
  smp_shard_test uknet_multiqueue_test uknet_wait_test uknet_tcp_loss_test
UKRAFT_QUEUES=4 "$TSAN_BUILD_DIR"/smp_shard_test
UKRAFT_QUEUES=4 "$TSAN_BUILD_DIR"/uknet_multiqueue_test
UKRAFT_QUEUES=4 "$TSAN_BUILD_DIR"/uknet_wait_test
UKRAFT_QUEUES=4 "$TSAN_BUILD_DIR"/uknet_tcp_loss_test

# Real-OS-thread stress leg: the same TSan build reruns the concurrency
# suites with UKRAFT_THREADS=real — every uksched loop on its own pinned
# std::thread, no fiber annotations, only native mutex/condvar edges. This is
# the strongest check in the file: TSan sees the per-loop counters, the RCU
# registry grace periods, the SPSC rings and the doorbell protocol as genuine
# cross-thread traffic and validates every ordering claim the comments make.
cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" --target uksched_test fleet_test
UKRAFT_THREADS=real "$TSAN_BUILD_DIR"/uksched_test
UKRAFT_THREADS=real UKRAFT_QUEUES=4 "$TSAN_BUILD_DIR"/smp_shard_test
UKRAFT_THREADS=real UKRAFT_QUEUES=4 "$TSAN_BUILD_DIR"/uknet_multiqueue_test
UKRAFT_THREADS=real UKRAFT_QUEUES=4 "$TSAN_BUILD_DIR"/uknet_wait_test
# The fleet scenarios reboot Instances whose boot path spins up a scheduler;
# with real threads that is genuine cross-thread lifecycle traffic.
UKRAFT_THREADS=real "$TSAN_BUILD_DIR"/fleet_test

# Real-thread scaling gate: the same >=1.7x/>=3x speedups and zero TX-pool
# churn with every per-queue pump loop hosted on a real pinned thread
# (emits BENCH_rss_scaling_threads.json next to the fiber-mode trendline).
(cd "$BUILD_DIR" && UKRAFT_THREADS=real ./bench_fig_rss_scaling --threads)

echo "ci: OK (src/ built with -Wall -Wextra -Werror; markdown links checked; tests passed tier1+tier2 plain, at UKRAFT_QUEUES=4 with the RSS-scaling, fleet-scaling and persistence gates, and under ASan+UBSan with UKRAFT_QUEUES=2, incl. the blocking --wait, --eventloop, TCP --loss, fleet and persistence legs; TSan covered the sharded suites plus the loss-pattern and fleet suites in fiber AND real-thread mode, and the scaling gate held on real threads)"
