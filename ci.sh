#!/usr/bin/env bash
# Tier-1 verify with warnings-as-errors on src/: configure, build, ctest.
# Usage: ./ci.sh [build-dir]   (default: build-ci)
set -euo pipefail

BUILD_DIR="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DUKRAFT_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "ci: OK (src/ built with -Wall -Wextra -Werror; all tests passed)"
