// Loss-pattern conformance suite for the modernized TCP fast path: NewReno
// congestion control, SACK-based loss recovery, delayed ACKs and window
// scaling, exercised against scripted drop patterns through RawPeer (every
// ACK and SACK block under test control) and end-to-end over lossy wires.
//
// The scenarios pin down the recovery contract documented in
// src/uknet/DATAPATH.md:
//  * SYN option negotiation is byte-exact on the wire and degrades to the
//    legacy stop-and-go behaviour against an option-less peer;
//  * a single mid-window loss retransmits exactly ONE segment (the SACK
//    scoreboard spares the rest) with zero TX-pool churn;
//  * fast retransmit needs exactly three duplicate ACKs, not two;
//  * cwnd halves into fast recovery, deflates to ssthresh on the full ACK,
//    and grows linearly in congestion avoidance afterwards;
//  * a NewReno partial ACK advances snd_una mid-recovery and re-sends only
//    the next hole;
//  * the RTO backs off exponentially, resets on forward progress, and its
//    go-back-N re-burst skips SACKed segments;
//  * the receiver coalesces ACKs to one per 2*MSS within a burst and flushes
//    the remainder at end-of-turn;
//  * out-of-order arrivals are queued for reassembly and advertised as
//    ascending SACK blocks on immediate dup ACKs;
//  * a negotiated window scale sustains more than 64 KiB in flight on a
//    single connection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "net_harness.h"
#include "ukalloc/registry.h"
#include "uknet/stack.h"
#include "uknetdev/virtio_net.h"

namespace {

using namespace uknet;
using netharness::Host;
using netharness::LossyTest;
using netharness::RawPeer;
using netharness::RawPeerTest;
using netharness::TwoHostTest;
using netharness::ZeroAllocGuard;

constexpr std::uint32_t kMss = TcpSocket::kMss;

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint32_t salt = 0) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>((i * 7 + salt) % 251);
  }
  return v;
}

// RawPeerTest plus a handshake whose SYN|ACK carries options, so the modern
// features negotiate on. The peer's data space starts at seq 1001.
class TcpLossTest : public RawPeerTest {
 protected:
  std::uint32_t ModernHandshake(const std::shared_ptr<TcpSocket>& client,
                                std::uint16_t peer_port,
                                std::int8_t peer_wscale = 0) {
    Pump();
    EXPECT_FALSE(peer_.segs.empty());
    EXPECT_EQ(peer_.segs.back().hdr.flags, kTcpSyn);
    std::uint32_t iss = peer_.segs.back().hdr.seq;
    peer_.SendTcpWithOptions(peer_port, client->local_port(),
                             kTcpSyn | kTcpAck, 1000, iss + 1, 65535,
                             /*mss=*/kMss, peer_wscale, /*sack_permitted=*/true);
    Pump();
    EXPECT_TRUE(client->connected());
    return iss;
  }

  // Data segments (non-empty payload) among the recorded segments.
  static std::vector<const RawPeer::Seg*> DataSegs(const RawPeer& peer) {
    std::vector<const RawPeer::Seg*> out;
    for (const auto& s : peer.segs) {
      if (!s.payload.empty()) {
        out.push_back(&s);
      }
    }
    return out;
  }

  // Pure ACKs: ACK flag only, no payload.
  static std::vector<const RawPeer::Seg*> PureAcks(const RawPeer& peer) {
    std::vector<const RawPeer::Seg*> out;
    for (const auto& s : peer.segs) {
      if (s.payload.empty() && s.hdr.flags == kTcpAck) {
        out.push_back(&s);
      }
    }
    return out;
  }
};

// ---- SYN option negotiation --------------------------------------------------------

// The client SYN's option area, byte for byte: MSS 1400, window scale 0 (the
// default 64 KiB receive buffer needs no shift, but offering the option
// enables the peer's side), SACK-permitted, NOP-padded to a 4-byte multiple.
TEST_F(TcpLossTest, SynCarriesMssWscaleSackPermittedByteExact) {
  auto client = host_.stack->TcpConnect(peer_.ip, 80);
  ASSERT_NE(client, nullptr);
  Pump();
  ASSERT_FALSE(peer_.segs.empty());
  const auto& syn = peer_.segs.back();
  ASSERT_EQ(syn.hdr.flags, kTcpSyn);
  EXPECT_EQ(syn.hdr.mss, kMss);
  EXPECT_EQ(syn.hdr.wscale, 0);
  EXPECT_TRUE(syn.hdr.sack_permitted);
  const std::uint8_t want[] = {
      2, 4, 0x05, 0x78,  // MSS = 1400
      3, 3, 0,           // window scale, shift 0
      4, 2,              // SACK-permitted
      1, 1, 1,           // NOP padding to 12 bytes
  };
  ASSERT_TRUE(syn.HasOptions());
  auto got = syn.OptionBytes();
  ASSERT_EQ(got.size(), sizeof(want));
  EXPECT_TRUE(std::equal(got.begin(), got.end(), want));
}

// Legacy mode sends a bare 20-byte SYN: the stop-and-go baseline is
// bit-identical to the pre-modernization stack.
TEST_F(TcpLossTest, LegacyModeSynHasNoOptions) {
  host_.stack->tcp_modern = false;
  auto client = host_.stack->TcpConnect(peer_.ip, 80);
  ASSERT_NE(client, nullptr);
  Pump();
  ASSERT_FALSE(peer_.segs.empty());
  EXPECT_EQ(peer_.segs.back().hdr.flags, kTcpSyn);
  EXPECT_FALSE(peer_.segs.back().HasOptions());
}

// An option-less SYN|ACK (the stock Handshake helper) turns every modern
// feature off: no SACK, no scaling — and traffic still flows.
TEST_F(TcpLossTest, OptionlessPeerDisablesModernFeatures) {
  auto client = host_.stack->TcpConnect(peer_.ip, 80);
  ASSERT_NE(client, nullptr);
  std::uint32_t iss = Handshake(client, 80);
  EXPECT_FALSE(client->sack_enabled());
  EXPECT_EQ(client->send_wscale(), 0);
  EXPECT_EQ(client->recv_wscale(), 0);

  auto data = Pattern(kMss);
  ASSERT_EQ(client->Send(data), static_cast<std::int64_t>(kMss));
  Pump();
  auto segs = DataSegs(peer_);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0]->hdr.seq, iss + 1);
  EXPECT_EQ(segs[0]->payload, data);
}

// SYN|ACK options negotiate: SACK on, the peer's wscale applied to every
// subsequent window update — but never to the SYN|ACK's own window field.
TEST_F(TcpLossTest, SynAckNegotiatesSackAndWscale) {
  auto client = host_.stack->TcpConnect(peer_.ip, 82);
  ASSERT_NE(client, nullptr);
  Pump();
  std::uint32_t iss = peer_.segs.back().hdr.seq;
  peer_.SendTcpWithOptions(82, client->local_port(), kTcpSyn | kTcpAck, 1000,
                           iss + 1, /*window=*/1000, kMss, /*wscale=*/3,
                           /*sack_permitted=*/true);
  Pump();
  ASSERT_TRUE(client->connected());
  EXPECT_TRUE(client->sack_enabled());
  EXPECT_EQ(client->send_wscale(), 3);
  EXPECT_EQ(client->recv_wscale(), 0);  // we offered shift 0
  // RFC 7323: the window in a SYN-flagged segment is never scaled.
  EXPECT_EQ(client->send_window(), 1000u);
  // The handshake-completing ACK carries no options.
  ASSERT_FALSE(peer_.segs.empty());
  EXPECT_EQ(peer_.segs.back().hdr.flags, kTcpAck);
  EXPECT_FALSE(peer_.segs.back().HasOptions());
  // A post-handshake ACK's window is shifted by the negotiated scale.
  peer_.SendTcp(82, client->local_port(), kTcpAck, 1001, iss + 1, 1000);
  Pump();
  EXPECT_EQ(client->send_window(), 1000u << 3);
}

// ---- SACK-based fast recovery ------------------------------------------------------

// The headline loss pattern: one segment lost mid-window. The three dup ACKs
// carry a SACK block covering everything after the hole, so recovery
// retransmits exactly ONE segment — from the retained queue, with zero
// TX-pool allocations and a flat heap — and cwnd halves.
TEST_F(TcpLossTest, SingleLossSackRecoveryRetransmitsExactlyOne) {
  auto client = host_.stack->TcpConnect(peer_.ip, 80);
  ASSERT_NE(client, nullptr);
  std::uint32_t iss = ModernHandshake(client, 80);
  EXPECT_EQ(client->cwnd(), 10 * kMss);  // IW10

  // 8000 bytes => segments of 1400x5 + 1000, all within cwnd.
  auto data = Pattern(8000);
  ASSERT_EQ(client->Send(data), 8000);
  Pump();
  ASSERT_EQ(DataSegs(peer_).size(), 6u);

  // Segment 1 arrives: cumulative ACK, slow start grows cwnd by one MSS.
  peer_.SendTcp(80, client->local_port(), kTcpAck, 1001, iss + 1 + kMss, 65535);
  Pump();
  EXPECT_EQ(client->cwnd(), 11 * kMss);

  // Segment 2 is "lost": everything after it arrives and is SACKed.
  peer_.segs.clear();
  ZeroAllocGuard guard({host_.netif->tx_pool()}, host_.alloc.get());
  const TcpSackBlock hole_after[] = {{iss + 1 + 2 * kMss, iss + 1 + 8000}};
  for (int i = 0; i < 3; ++i) {
    peer_.SendTcpSack(80, client->local_port(), 1001, iss + 1 + kMss, 65535,
                      hole_after);
    Pump(1);
  }
  Pump();

  // Exactly one retransmission: the hole, byte-identical payload.
  auto rexmit = DataSegs(peer_);
  ASSERT_EQ(rexmit.size(), 1u);
  EXPECT_EQ(rexmit[0]->hdr.seq, iss + 1 + kMss);
  ASSERT_EQ(rexmit[0]->payload.size(), kMss);
  EXPECT_TRUE(std::equal(rexmit[0]->payload.begin(), rexmit[0]->payload.end(),
                         data.begin() + kMss));
  EXPECT_EQ(client->tcp_stats().fast_retransmits, 1u);
  EXPECT_TRUE(client->in_fast_recovery());
  // Entry arithmetic: flight was 6600 (8000 minus the ACKed 1400), so
  // ssthresh = 3300 and cwnd inflates to ssthresh + 3*MSS.
  EXPECT_EQ(client->ssthresh(), 3300u);
  EXPECT_EQ(client->cwnd(), 3300u + 3 * kMss);

  // The full ACK ends recovery: cwnd deflates to ssthresh = flight/2.
  peer_.SendTcp(80, client->local_port(), kTcpAck, 1001, iss + 1 + 8000, 65535);
  Pump();
  EXPECT_FALSE(client->in_fast_recovery());
  EXPECT_EQ(client->cwnd(), 3300u);
  EXPECT_EQ(DataSegs(peer_).size(), 1u);  // still just the one retransmit

  guard.ExpectPoolFlat("SACK fast recovery");
  guard.ExpectHeapSteady("SACK fast recovery");
}

// Two duplicate ACKs must NOT trigger fast retransmit; the third must.
TEST_F(TcpLossTest, FastRetransmitNeedsExactlyThreeDupAcks) {
  auto client = host_.stack->TcpConnect(peer_.ip, 80);
  ASSERT_NE(client, nullptr);
  std::uint32_t iss = ModernHandshake(client, 80);

  auto data = Pattern(2 * kMss);
  ASSERT_EQ(client->Send(data), static_cast<std::int64_t>(2 * kMss));
  Pump();
  peer_.segs.clear();

  peer_.SendTcp(80, client->local_port(), kTcpAck, 1001, iss + 1, 65535);
  Pump();
  peer_.SendTcp(80, client->local_port(), kTcpAck, 1001, iss + 1, 65535);
  Pump();
  EXPECT_EQ(DataSegs(peer_).size(), 0u);
  EXPECT_EQ(client->tcp_stats().fast_retransmits, 0u);
  EXPECT_FALSE(client->in_fast_recovery());

  peer_.SendTcp(80, client->local_port(), kTcpAck, 1001, iss + 1, 65535);
  Pump();
  auto rexmit = DataSegs(peer_);
  ASSERT_EQ(rexmit.size(), 1u);
  EXPECT_EQ(rexmit[0]->hdr.seq, iss + 1);
  EXPECT_EQ(client->tcp_stats().fast_retransmits, 1u);
  EXPECT_TRUE(client->in_fast_recovery());
}

// After recovery lands cwnd on ssthresh, further ACKs grow it by
// ~MSS*MSS/cwnd: linear (congestion avoidance), not exponential.
TEST_F(TcpLossTest, CongestionAvoidanceGrowsLinearly) {
  auto client = host_.stack->TcpConnect(peer_.ip, 80);
  ASSERT_NE(client, nullptr);
  std::uint32_t iss = ModernHandshake(client, 80);

  // 4 segments; lose the first, SACK the rest, recover.
  auto data = Pattern(4 * kMss);
  ASSERT_EQ(client->Send(data), static_cast<std::int64_t>(4 * kMss));
  Pump();
  const TcpSackBlock rest[] = {{iss + 1 + kMss, iss + 1 + 4 * kMss}};
  for (int i = 0; i < 3; ++i) {
    peer_.SendTcpSack(80, client->local_port(), 1001, iss + 1, 65535, rest);
    Pump(1);
  }
  peer_.SendTcp(80, client->local_port(), kTcpAck, 1001, iss + 1 + 4 * kMss,
                65535);
  Pump();
  // flight was 5600 at entry: ssthresh = cwnd = 2800.
  ASSERT_FALSE(client->in_fast_recovery());
  ASSERT_EQ(client->cwnd(), 2 * kMss);
  ASSERT_EQ(client->ssthresh(), 2 * kMss);

  // cwnd == ssthresh: congestion avoidance. Each full-MSS ACK adds
  // MSS*MSS/cwnd bytes.
  std::uint32_t expect = 2 * kMss;
  for (int round = 0; round < 2; ++round) {
    std::uint32_t seq = iss + 1 + (4 + round) * kMss;
    ASSERT_EQ(client->Send(std::span(data.data(), kMss)),
              static_cast<std::int64_t>(kMss));
    Pump();
    peer_.SendTcp(80, client->local_port(), kTcpAck, 1001, seq + kMss, 65535);
    Pump();
    expect += kMss * kMss / expect;
    EXPECT_EQ(client->cwnd(), expect);
  }
}

// NewReno partial ACK: two holes in one window. The partial ACK repairing
// the first hole advances snd_una, stays in recovery, and immediately
// retransmits the next hole — nothing else.
TEST_F(TcpLossTest, PartialAckMidRecoveryRetransmitsNextHole) {
  auto client = host_.stack->TcpConnect(peer_.ip, 80);
  ASSERT_NE(client, nullptr);
  std::uint32_t iss = ModernHandshake(client, 80);

  // 6 segments; segments 1 and 3 are lost (seqs base and base+2*MSS).
  auto data = Pattern(6 * kMss);
  ASSERT_EQ(client->Send(data), static_cast<std::int64_t>(6 * kMss));
  Pump();
  ASSERT_EQ(DataSegs(peer_).size(), 6u);
  const std::uint32_t base = iss + 1;
  peer_.segs.clear();

  // Dup ACKs carry what actually arrived: segment 2, and segments 4-6.
  const TcpSackBlock held[] = {{base + kMss, base + 2 * kMss},
                               {base + 3 * kMss, base + 6 * kMss}};
  for (int i = 0; i < 3; ++i) {
    peer_.SendTcpSack(80, client->local_port(), 1001, base, 65535, held);
    Pump(1);
  }
  Pump();
  auto first = DataSegs(peer_);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0]->hdr.seq, base);  // first hole
  ASSERT_TRUE(client->in_fast_recovery());

  // The retransmit lands; the peer now has 1-2 but still misses 3: partial
  // ACK below the recovery point. snd_una advances, segment 3 goes out.
  peer_.segs.clear();
  const TcpSackBlock tail[] = {{base + 3 * kMss, base + 6 * kMss}};
  peer_.SendTcpSack(80, client->local_port(), 1001, base + 2 * kMss, 65535,
                    tail);
  Pump();
  auto second = DataSegs(peer_);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0]->hdr.seq, base + 2 * kMss);  // second hole only
  EXPECT_TRUE(client->in_fast_recovery());
  EXPECT_EQ(client->in_flight(), 4 * kMss);  // snd_una advanced by 2 segments

  // Full ACK: recovery ends, cwnd deflates to ssthresh (= flight/2 = 3*MSS).
  peer_.SendTcp(80, client->local_port(), kTcpAck, 1001, base + 6 * kMss, 65535);
  Pump();
  EXPECT_FALSE(client->in_fast_recovery());
  EXPECT_EQ(client->cwnd(), client->ssthresh());
  EXPECT_EQ(client->ssthresh(), 3 * kMss);
  EXPECT_EQ(client->in_flight(), 0u);
}

// ---- RTO behaviour -----------------------------------------------------------------

// The retransmission timeout doubles on every fire (exponential backoff) and
// resets to the base interval on the first forward ACK.
TEST_F(TcpLossTest, RtoBackoffDoublesAndResetsOnAck) {
  host_.stack->rto_cycles = 100'000;
  auto client = host_.stack->TcpConnect(peer_.ip, 80);
  ASSERT_NE(client, nullptr);
  std::uint32_t iss = ModernHandshake(client, 80);

  auto data = Pattern(kMss);
  ASSERT_EQ(client->Send(data), static_cast<std::int64_t>(kMss));
  Pump();
  peer_.segs.clear();

  // First fire after one base interval. Loss response: cwnd collapses to one
  // MSS, ssthresh keeps its 2*MSS floor.
  clock_.Charge(120'000);
  Pump();
  EXPECT_EQ(client->tcp_stats().rto_retransmits, 1u);
  EXPECT_EQ(DataSegs(peer_).size(), 1u);
  EXPECT_EQ(client->cwnd(), kMss);
  EXPECT_EQ(client->ssthresh(), 2 * kMss);

  // Backoff doubled: one more base interval must NOT fire again...
  peer_.segs.clear();
  clock_.Charge(110'000);
  Pump();
  EXPECT_EQ(client->tcp_stats().rto_retransmits, 1u);
  EXPECT_EQ(DataSegs(peer_).size(), 0u);
  // ...but two do.
  clock_.Charge(110'000);
  Pump();
  EXPECT_EQ(client->tcp_stats().rto_retransmits, 2u);
  EXPECT_EQ(DataSegs(peer_).size(), 1u);

  // Forward progress resets the backoff: the next loss fires after a single
  // base interval again.
  peer_.SendTcp(80, client->local_port(), kTcpAck, 1001, iss + 1 + kMss, 65535);
  Pump();
  ASSERT_EQ(client->Send(data), static_cast<std::int64_t>(kMss));
  Pump();
  peer_.segs.clear();
  clock_.Charge(120'000);
  Pump();
  EXPECT_EQ(client->tcp_stats().rto_retransmits, 3u);
  EXPECT_EQ(DataSegs(peer_).size(), 1u);
}

// An RTO's go-back-N re-burst consults the SACK scoreboard: segments the
// peer already holds are skipped, copy-free, with zero pool churn.
TEST_F(TcpLossTest, RtoReburstSkipsSackedSegments) {
  host_.stack->rto_cycles = 100'000;
  auto client = host_.stack->TcpConnect(peer_.ip, 80);
  ASSERT_NE(client, nullptr);
  std::uint32_t iss = ModernHandshake(client, 80);

  auto data = Pattern(6 * kMss);
  ASSERT_EQ(client->Send(data), static_cast<std::int64_t>(6 * kMss));
  Pump();
  const std::uint32_t base = iss + 1;

  // One SACK ACK (a single dup ACK — not enough for fast retransmit) marks
  // segments 3-6 as held; segments 1 and 2 are the holes.
  const TcpSackBlock held[] = {{base + 2 * kMss, base + 6 * kMss}};
  peer_.SendTcpSack(80, client->local_port(), 1001, base, 65535, held);
  Pump();
  peer_.segs.clear();
  ZeroAllocGuard guard({host_.netif->tx_pool()}, host_.alloc.get());

  clock_.Charge(120'000);
  Pump();
  EXPECT_EQ(client->tcp_stats().rto_retransmits, 1u);
  auto rexmit = DataSegs(peer_);
  ASSERT_EQ(rexmit.size(), 2u);  // only the two holes, not all six
  EXPECT_EQ(rexmit[0]->hdr.seq, base);
  EXPECT_EQ(rexmit[1]->hdr.seq, base + kMss);
  EXPECT_EQ(client->tcp_stats().sack_rexmit_segments, 4u);
  guard.ExpectPoolFlat("RTO re-burst");
  guard.ExpectHeapSteady("RTO re-burst");
}

// ---- delayed ACKs (receiver side) --------------------------------------------------

// A four-segment burst processed in one Poll turn elicits exactly two ACKs:
// one per 2*MSS. A lone trailing segment still gets its ACK the same turn
// (the end-of-turn flush), so the wire never goes quiet.
TEST_F(TcpLossTest, DelayedAckCoalescesBurstToOnePerTwoMss) {
  auto client = host_.stack->TcpConnect(peer_.ip, 80);
  ASSERT_NE(client, nullptr);
  ModernHandshake(client, 80);
  peer_.segs.clear();
  auto before = client->tcp_stats();

  // Four segments on the wire before the host polls once.
  auto data = Pattern(4 * kMss, /*salt=*/3);
  for (int i = 0; i < 4; ++i) {
    peer_.SendTcp(80, client->local_port(), kTcpAck,
                  1001 + static_cast<std::uint32_t>(i) * kMss, 0, 65535,
                  std::span(data.data() + static_cast<std::size_t>(i) * kMss,
                            kMss));
  }
  Pump();
  auto acks = PureAcks(peer_);
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_EQ(acks[0]->hdr.ack, 1001 + 2 * kMss);
  EXPECT_EQ(acks[1]->hdr.ack, 1001 + 4 * kMss);
  EXPECT_EQ(client->tcp_stats().acks_coalesced - before.acks_coalesced, 2u);
  EXPECT_EQ(client->tcp_stats().pure_acks_sent - before.pure_acks_sent, 2u);

  // A lone segment: owed, then flushed by the same turn's timer pass.
  peer_.segs.clear();
  peer_.SendTcp(80, client->local_port(), kTcpAck, 1001 + 4 * kMss, 0, 65535,
                std::span(data.data(), kMss));
  Pump(1);
  acks = PureAcks(peer_);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0]->hdr.ack, 1001 + 5 * kMss);

  // All five segments are readable, in order.
  std::vector<std::uint8_t> got(5 * kMss);
  ASSERT_EQ(client->Recv(got), static_cast<std::int64_t>(5 * kMss));
  EXPECT_TRUE(std::equal(got.begin(), got.begin() + 4 * kMss, data.begin()));
  EXPECT_TRUE(std::equal(got.begin() + 4 * kMss, got.end(), data.begin()));
}

// A retransmission of already-delivered data is re-ACKed immediately — never
// delayed, or the peer would sit out a full RTO.
TEST_F(TcpLossTest, OldSegmentGetsImmediateAck) {
  auto client = host_.stack->TcpConnect(peer_.ip, 80);
  ASSERT_NE(client, nullptr);
  ModernHandshake(client, 80);
  auto data = Pattern(kMss);
  peer_.SendTcp(80, client->local_port(), kTcpAck, 1001, 0, 65535, data);
  Pump();
  peer_.segs.clear();

  peer_.SendTcp(80, client->local_port(), kTcpAck, 1001, 0, 65535, data);
  Pump(1);
  auto acks = PureAcks(peer_);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0]->hdr.ack, 1001 + kMss);
}

// ---- out-of-order reassembly + SACK generation -------------------------------------

// Arrivals above rcv_nxt are queued (not dropped), every such arrival is
// answered with an immediate dup ACK advertising the held ranges as
// ascending SACK blocks, and filling the hole drains the queue in order and
// jumps the cumulative ACK past everything held.
TEST_F(TcpLossTest, OooArrivalSendsSackBlocksAndReassembles) {
  auto client = host_.stack->TcpConnect(peer_.ip, 80);
  ASSERT_NE(client, nullptr);
  ModernHandshake(client, 80);
  auto data = Pattern(4 * kMss, /*salt=*/9);
  auto seg = [&](int i) {
    return std::span<const std::uint8_t>(
        data.data() + static_cast<std::size_t>(i) * kMss, kMss);
  };
  const std::uint32_t base = 1001;

  // Segment 1 in order.
  peer_.SendTcp(80, client->local_port(), kTcpAck, base, 0, 65535, seg(0));
  Pump();
  peer_.segs.clear();

  // Segment 3 (skipping 2): immediate dup ACK with one SACK block.
  peer_.SendTcp(80, client->local_port(), kTcpAck, base + 2 * kMss, 0, 65535,
                seg(2));
  Pump(1);
  {
    auto acks = PureAcks(peer_);
    ASSERT_EQ(acks.size(), 1u);
    EXPECT_EQ(acks[0]->hdr.ack, base + kMss);
    ASSERT_EQ(acks[0]->hdr.sack_count, 1);
    EXPECT_EQ(acks[0]->hdr.sacks[0].start, base + 2 * kMss);
    EXPECT_EQ(acks[0]->hdr.sacks[0].end, base + 3 * kMss);
  }

  // Segment 4 lands flush against segment 3: the receiver merges the two
  // into one stored range, so the dup ACK carries a single widened block.
  peer_.segs.clear();
  peer_.SendTcp(80, client->local_port(), kTcpAck, base + 3 * kMss, 0, 65535,
                seg(3));
  Pump(1);
  {
    auto acks = PureAcks(peer_);
    ASSERT_EQ(acks.size(), 1u);
    EXPECT_EQ(acks[0]->hdr.ack, base + kMss);
    ASSERT_EQ(acks[0]->hdr.sack_count, 1);
    EXPECT_EQ(acks[0]->hdr.sacks[0].start, base + 2 * kMss);
    EXPECT_EQ(acks[0]->hdr.sacks[0].end, base + 4 * kMss);
  }
  EXPECT_EQ(client->tcp_stats().ooo_queued, 2u);
  EXPECT_EQ(client->tcp_stats().out_of_order_dropped, 0u);

  // Segment 2 fills the hole: the cumulative ACK jumps over the whole queue
  // immediately, with no SACK blocks left to advertise.
  peer_.segs.clear();
  peer_.SendTcp(80, client->local_port(), kTcpAck, base + kMss, 0, 65535,
                seg(1));
  Pump(1);
  {
    auto acks = PureAcks(peer_);
    ASSERT_EQ(acks.size(), 1u);
    EXPECT_EQ(acks[0]->hdr.ack, base + 4 * kMss);
    EXPECT_EQ(acks[0]->hdr.sack_count, 0);
  }

  // Reassembled bytes come out of Recv in order.
  std::vector<std::uint8_t> got(4 * kMss);
  ASSERT_EQ(client->Recv(got), static_cast<std::int64_t>(4 * kMss));
  EXPECT_EQ(got, data);
}

// ---- window scaling end-to-end -----------------------------------------------------

class WideWindowTest : public TwoHostTest {
 protected:
  WideWindowTest() : TwoHostTest(1, 512) {}
};

// With buffer caps above 64 KiB on both ends, the negotiated window scale
// lets a single connection hold more than a 16-bit window's worth of
// unacknowledged data in flight.
TEST_F(WideWindowTest, ScaledFlowSustainsMoreThan64KInFlight) {
  a_.netif->AddArpEntry(MakeIp(10, 0, 0, 2), b_.nic->mac());
  b_.netif->AddArpEntry(MakeIp(10, 0, 0, 1), a_.nic->mac());
  constexpr std::size_t kBig = 192 * 1024;
  auto listener = b_.stack->TcpListen(80);
  listener->SetBufferCaps(TcpSocket::kSendBufCap, kBig);
  auto client = a_.stack->TcpConnect(MakeIp(10, 0, 0, 2), 80);
  ASSERT_NE(client, nullptr);
  client->SetBufferCaps(kBig, TcpSocket::kRecvBufCap);

  auto data = Pattern(2 * kBig);
  std::size_t sent = 0;
  std::vector<std::uint8_t> received;
  received.reserve(data.size());
  std::shared_ptr<TcpSocket> server;
  std::uint32_t max_inflight = 0;
  std::uint32_t max_wnd = 0;
  std::uint8_t buf[8192];
  for (int round = 0; round < 40000 && received.size() < data.size(); ++round) {
    if (client->connected() && sent < data.size()) {
      std::int64_t n =
          client->Send(std::span(data.data() + sent, data.size() - sent));
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
      }
    }
    a_.stack->Poll();
    b_.stack->Poll();
    if (server == nullptr) {
      server = listener->Accept();
    } else {
      std::int64_t r = server->Recv(buf);
      if (r > 0) {
        received.insert(received.end(), buf, buf + r);
      }
    }
    max_inflight = std::max(max_inflight, client->in_flight());
    max_wnd = std::max(max_wnd, client->send_window());
  }
  ASSERT_EQ(received.size(), data.size());
  EXPECT_EQ(received, data);
  // 192 KiB needs a shift of 2 (the advertised field tops out at 64 KiB).
  EXPECT_EQ(client->send_wscale(), 2);
  EXPECT_GT(max_wnd, 65535u);
  EXPECT_GT(max_inflight, 65536u);
  // The receiver coalesced: strictly fewer pure ACKs than data segments.
  ASSERT_NE(server, nullptr);
  EXPECT_LT(server->tcp_stats().pure_acks_sent,
            client->tcp_stats().data_segments_sent);
}

// ---- lossy wire end-to-end ---------------------------------------------------------

// The integration smoke at 2% random loss: a 128 KiB transfer arrives intact,
// recovery engaged at least once, and the receiver's delayed ACKs kept the
// reverse path under one ACK per data segment.
TEST_F(LossyTest, ModernStackSurvivesRandomLoss) {
  a_->netif->AddArpEntry(MakeIp(10, 0, 0, 2), b_->nic->mac());
  b_->netif->AddArpEntry(MakeIp(10, 0, 0, 1), a_->nic->mac());
  auto listener = b_->stack->TcpListen(80);
  auto client = a_->stack->TcpConnect(MakeIp(10, 0, 0, 2), 80);

  auto data = Pattern(128 * 1024);
  std::size_t sent = 0;
  std::vector<std::uint8_t> received;
  std::shared_ptr<TcpSocket> server;
  std::uint8_t buf[4096];
  for (int round = 0; round < 400000 && received.size() < data.size(); ++round) {
    clock_.Charge(2000);  // let RTOs fire on the virtual clock
    if (client->connected() && sent < data.size()) {
      std::int64_t n =
          client->Send(std::span(data.data() + sent, data.size() - sent));
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
      }
    }
    a_->stack->Poll();
    b_->stack->Poll();
    if (server == nullptr) {
      server = listener->Accept();
    } else {
      std::int64_t r = server->Recv(buf);
      if (r > 0) {
        received.insert(received.end(), buf, buf + r);
      }
    }
  }
  ASSERT_EQ(received.size(), data.size());
  EXPECT_EQ(received, data);
  EXPECT_GT(client->tcp_stats().retransmissions, 0u);
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(client->sack_enabled());
  EXPECT_LT(server->tcp_stats().pure_acks_sent,
            client->tcp_stats().data_segments_sent);
}

}  // namespace
