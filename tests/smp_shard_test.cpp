// tests/smp_shard_test.cpp - SMP scale-out over the shared-nothing store.
//
// The contract under test (src/uknet/DATAPATH.md "SMP scale-out: one loop
// per queue over a shared-nothing store"): N event loops each own one RSS
// queue and one
// store shard; a shard-aligned request never touches another loop's memory
// (the off-diagonal access-audit buckets stay zero), cross-shard operations
// travel as SPSC ring messages executed by the owner, and doorbells follow
// the push-then-ring / drain-then-sleep discipline so a loop parked in
// PollWait wakes when a sibling rings work into its mailbox.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net_harness.h"
#include "apps/kvstore.h"
#include "ukalloc/registry.h"
#include "ukarch/hash.h"
#include "uklock/rcu.h"
#include "uknetdev/loopback.h"
#include "uknetdev/rss.h"
#include "uknetdev/virtio_net.h"
#include "uksched/scheduler.h"
#include "uksched/spsc_ring.h"
#include "uksched/thread_scheduler.h"
#include "ukplat/clock.h"

namespace {

using namespace uknet;
using apps::KvServer;

// ---- SpscRing: the cross-shard mailbox ------------------------------------------

TEST(SpscRing, FifoOrderSurvivesIndexWraparound) {
  uksched::SpscRing<int, 8> ring;
  int out = -1;
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.Pop(&out));  // empty ring: consumer backs off
  // Push/pop far past the capacity so the free-running indices wrap the mask
  // repeatedly; FIFO order must hold across every wrap.
  for (int cycle = 0; cycle < 7; ++cycle) {
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(ring.Push(cycle * 100 + i));
    }
    EXPECT_EQ(ring.size(), 6u);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(ring.Pop(&out));
      EXPECT_EQ(out, cycle * 100 + i);
    }
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.Pop(&out));
}

TEST(SpscRing, FullRingIsBackpressureNotLoss) {
  uksched::SpscRing<int, 4> ring;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.Push(i));
  }
  EXPECT_EQ(ring.size(), ring.capacity());
  // Full: the producer keeps the message (KvServer parks it in an outbox).
  EXPECT_FALSE(ring.Push(99));
  EXPECT_FALSE(ring.Push(99));
  EXPECT_EQ(ring.size(), 4u);
  int out = -1;
  ASSERT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.Push(4));   // exactly one slot reopened
  EXPECT_FALSE(ring.Push(5));  // and no more
  for (int want : {1, 2, 3, 4}) {
    ASSERT_TRUE(ring.Pop(&out));
    EXPECT_EQ(out, want);  // the refused 99s left no hole in the sequence
  }
  EXPECT_FALSE(ring.Pop(&out));
}

// ---- Doorbell: ring work into a sleeping loop -----------------------------------

// Single-image world over loopback: TxBurst is the synchronous interrupt
// source, making the park/wake ordering deterministic (same shape as the
// PollWait suite's LoopWorld).
struct LoopWorld {
  explicit LoopWorld(std::uint16_t queues = 1) : mem(32 << 20) {
    std::uint64_t heap_gpa = mem.Carve(16 << 20, 4096);
    alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                     mem.At(heap_gpa, 16 << 20), 16 << 20);
    dev = std::make_unique<uknetdev::Loopback>(&mem);
    stack = std::make_unique<NetStack>(&mem, &clock, alloc.get());
    NetIf::Config cfg;
    cfg.ip = MakeIp(10, 0, 0, 1);
    cfg.queues = queues;
    netif = stack->AddInterface(dev.get(), cfg);
    sched = uksched::MakeScheduler(alloc.get(), &clock);
    stack->SetScheduler(sched.get());
  }

  ukplat::Clock clock;
  ukplat::MemRegion mem;
  std::unique_ptr<ukalloc::Allocator> alloc;
  std::unique_ptr<uknetdev::Loopback> dev;
  std::unique_ptr<NetStack> stack;
  NetIf* netif = nullptr;
  std::unique_ptr<uksched::Scheduler> sched;
};

TEST(ShardDoorbell, PushThenRingWakesPollWaitSleeper) {
  LoopWorld w;
  uksched::SpscRing<int, 8> ring;
  int got = -1;
  std::size_t frames = 99;
  w.sched->CreateThread("consumer", [&] {
    // The loop discipline: the ring was drained (empty) before parking, so
    // sleeping is safe — the producer's doorbell will end the sleep.
    frames = w.stack->PollWait(0, /*timeout_cycles=*/10'000'000'000ull);
    ASSERT_TRUE(ring.Pop(&got));  // woke BECAUSE there is ring work
  });
  w.sched->CreateThread("producer", [&] {
    // The consumer ran first and is parked by now.
    EXPECT_EQ(w.stack->wait_stats().blocked_waits, 1u);
    ASSERT_TRUE(ring.Push(42));   // publish the work...
    w.stack->RaiseQueueEvent(0);  // ...THEN ring the doorbell
  });
  EXPECT_EQ(w.sched->Run(), 0u);
  EXPECT_EQ(frames, 0u);  // no frame arrived: the soft event ended the wait
  EXPECT_EQ(got, 42);
  EXPECT_EQ(w.stack->wait_stats().queue_event_wakeups, 1u);
  EXPECT_EQ(w.stack->wait_stats().timer_wakeups, 0u);
}

TEST(ShardDoorbell, QueueEventWakesOnlyItsQueue) {
  LoopWorld w(2);
  ASSERT_EQ(w.netif->queue_count(), 2u);
  bool woke0 = false;
  bool woke1 = false;
  w.sched->CreateThread("wait-q0", [&] {
    w.stack->PollWait(0, 1'000'000ull);
    woke0 = true;
  });
  w.sched->CreateThread("wait-q1", [&] {
    w.stack->PollWait(1, 10'000'000'000ull);
    woke1 = true;
  });
  w.sched->CreateThread("ringer", [&] {
    EXPECT_EQ(w.stack->wait_stats().blocked_waits, 2u);
    w.stack->RaiseQueueEvent(0);  // q0's doorbell only
    w.sched->Yield();
    EXPECT_TRUE(woke0);
    EXPECT_FALSE(woke1) << "q1's sleeper took q0's doorbell";
    w.stack->RaiseQueueEvent(1);
  });
  EXPECT_EQ(w.sched->Run(), 0u);
  EXPECT_TRUE(woke1);
  EXPECT_EQ(w.stack->wait_stats().queue_event_wakeups, 2u);
}

// ---- Raw-frame harness for the sharded kvstore ----------------------------------

constexpr uknetdev::MacAddr kClientMac{{2, 0, 0, 0, 0, 9}};
constexpr std::uint16_t kKvPort = 7777;
const Ip4Addr kServerIp = MakeIp(10, 0, 0, 1);
const Ip4Addr kClientIp = MakeIp(10, 0, 0, 2);

// One Ethernet+IPv4+UDP request frame for the kv server. |src_port| selects
// the flow, and with it the RSS queue the request lands on.
std::vector<std::uint8_t> KvFrame(const uknetdev::MacAddr& dst_mac,
                                  std::uint16_t src_port,
                                  std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame(kEthHdrBytes + kIp4HdrBytes + kUdpHdrBytes +
                                  payload.size());
  EthHeader eth{dst_mac, kClientMac, kEthTypeIp4};
  eth.Serialize(frame.data());
  Ip4Header ip;
  ip.total_len = static_cast<std::uint16_t>(frame.size() - kEthHdrBytes);
  ip.proto = kIpProtoUdp;
  ip.src = kClientIp;
  ip.dst = kServerIp;
  ip.Serialize(frame.data() + kEthHdrBytes);
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = kKvPort;
  std::memcpy(frame.data() + kEthHdrBytes + kIp4HdrBytes + kUdpHdrBytes,
              payload.data(), payload.size());
  udp.Serialize(frame.data() + kEthHdrBytes + kIp4HdrBytes, kClientIp, kServerIp,
                payload);
  return frame;
}

// A source port whose flow the device RSS hash steers to |queue| (the same
// hash the server's ShardForKey machinery keys shards by).
std::uint16_t PortForQueue(std::uint16_t queue, std::uint16_t queues) {
  std::uint16_t p = 41000;
  while (ukarch::FlowHash4(kClientIp, p, kServerIp, kKvPort) % queues != queue) {
    ++p;
  }
  return p;
}

// A key owned by |shard| under the server's Toeplitz shard map.
std::uint16_t KeyForShard(std::uint16_t shard, std::uint16_t nshards,
                          std::uint16_t from = 0) {
  std::uint16_t k = from;
  while (KvServer::ShardForKey(k, nshards) != shard) {
    ++k;
  }
  return k;
}

struct Reply {
  std::uint16_t port = 0;  // client-side flow port the reply targets
  std::vector<std::uint8_t> payload;
};

// Drains the client side of the wire, parsing every UDP reply.
void DrainReplies(ukplat::Wire& wire, std::vector<Reply>* out) {
  while (auto f = wire.Receive(1)) {
    std::span<const std::uint8_t> frame(*f);
    if (frame.size() < kEthHdrBytes) {
      continue;
    }
    EthHeader eth = EthHeader::Parse(frame);
    if (eth.ethertype != kEthTypeIp4) {
      continue;
    }
    auto body = frame.subspan(kEthHdrBytes);
    auto ip = Ip4Header::Parse(body);
    if (!ip.has_value() || ip->proto != kIpProtoUdp) {
      continue;
    }
    auto dgram = body.subspan(ip->header_len,
                              static_cast<std::size_t>(ip->total_len) - ip->header_len);
    auto udp = UdpHeader::Parse(dgram, ip->src, ip->dst);
    if (!udp.has_value()) {
      continue;
    }
    Reply r;
    r.port = udp->dst_port;
    auto pay = dgram.subspan(kUdpHdrBytes, udp->length - kUdpHdrBytes);
    r.payload.assign(pay.begin(), pay.end());
    out->push_back(std::move(r));
  }
}

// Server world: a dedicated NIC owned by the raw-netdev KvServer, the client
// side of the wire driven entirely with hand-built frames.
struct KvWorld {
  explicit KvWorld(std::uint16_t queues)
      : wire(&clock, WireCfg()), mem(64 << 20) {
    std::uint64_t heap_gpa = mem.Carve(48 << 20, 4096);
    alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                     mem.At(heap_gpa, 48 << 20), 48 << 20);
    uknetdev::VirtioNet::Config cfg;
    cfg.backend = uknetdev::VirtioBackend::kVhostUser;
    cfg.queue_size = 256;
    nic = std::make_unique<uknetdev::VirtioNet>(&mem, &clock, &wire, cfg);
    server = std::make_unique<KvServer>(nic.get(), &mem, alloc.get(), kServerIp,
                                        kKvPort, apps::KvMode::kUkNetdev, queues);
  }

  static ukplat::Wire::Config WireCfg() {
    ukplat::Wire::Config cfg;
    cfg.queue_depth = 100000;
    return cfg;
  }

  ukplat::Clock clock;
  ukplat::Wire wire;
  ukplat::MemRegion mem;
  std::unique_ptr<ukalloc::Allocator> alloc;
  std::unique_ptr<uknetdev::VirtioNet> nic;
  std::unique_ptr<KvServer> server;
};

// ---- The 4-shard scale-out: one blocking loop per queue -------------------------

// Four uksched threads, each parked in PumpQueueWait on its own queue; a
// client thread fires shard-aligned SET/GET flows at all four. Every request
// completes inside the loop it hashed to: the off-diagonal access-audit
// buckets stay zero, no ring message is ever needed, and the in-place reply
// path keeps every shard's TX pool at zero churn (the per-shard Fig 18 gate).
TEST(SmpShard, FourShardLoopsShareNothing) {
  constexpr std::uint16_t kQueues = 4;
  constexpr int kGetRounds = 40;
  KvWorld w(kQueues);
  auto sched_owner = uksched::MakeScheduler(w.alloc.get(), &w.clock);
  auto& sched = *sched_owner;
  w.server->EnableWait(&sched);  // before Start(): queue setup hooks the intrs
  ASSERT_TRUE(w.server->Start());
  ASSERT_EQ(w.server->queue_count(), kQueues);

  std::uint16_t port[kQueues];
  std::uint16_t key[kQueues];
  std::string value[kQueues];
  for (std::uint16_t q = 0; q < kQueues; ++q) {
    port[q] = PortForQueue(q, kQueues);
    key[q] = KeyForShard(q, kQueues);
    value[q] = "shard-" + std::to_string(q);
  }

  netharness::ZeroAllocGuard guard(
      {w.server->tx_pool(0), w.server->tx_pool(1), w.server->tx_pool(2),
       w.server->tx_pool(3)});

  bool done = false;
  // Bounded sleep only so the pumps notice |done|; the wake is a free
  // virtual-clock jump, so generosity costs nothing.
  constexpr std::uint64_t kWaitSlice = 50'000'000ull;
  for (std::uint16_t q = 0; q < kQueues; ++q) {
    sched.CreateThread("pump", [&, q] {
      while (!done) {
        w.server->PumpQueueWait(q, kWaitSlice);
      }
    });
  }

  std::vector<Reply> replies;
  sched.CreateThread("client", [&] {
    auto await_replies = [&](std::size_t want) {
      for (int spin = 0; spin < 2000 && replies.size() < want; ++spin) {
        sched.Yield();
        DrainReplies(w.wire, &replies);
      }
      ASSERT_EQ(replies.size(), want);
    };
    // Warm each shard through its own flow.
    for (std::uint16_t q = 0; q < kQueues; ++q) {
      apps::KvRequest set{true, key[q], value[q]};
      w.wire.Send(1, KvFrame(w.nic->mac(), port[q], apps::EncodeKvRequest(set)));
    }
    await_replies(kQueues);
    // Steady state: shard-aligned GET load on all four flows at once.
    for (int r = 0; r < kGetRounds; ++r) {
      for (std::uint16_t q = 0; q < kQueues; ++q) {
        apps::KvRequest get{false, key[q], ""};
        w.wire.Send(1, KvFrame(w.nic->mac(), port[q], apps::EncodeKvRequest(get)));
      }
      await_replies(kQueues + static_cast<std::size_t>(r + 1) * kQueues);
    }
    done = true;
  });
  EXPECT_EQ(sched.Run(), 0u);

  // Every reply is correct and went back on the flow that asked.
  std::size_t gets_per_flow[kQueues] = {0};
  for (const Reply& r : replies) {
    std::uint16_t q = kQueues;
    for (std::uint16_t i = 0; i < kQueues; ++i) {
      if (r.port == port[i]) {
        q = i;
      }
    }
    ASSERT_LT(q, kQueues) << "reply to an unknown flow";
    const std::string text(r.payload.begin(), r.payload.end());
    if (text == "K") {
      continue;  // the warm-up SET ack
    }
    EXPECT_EQ(text, value[q]);
    ++gets_per_flow[q];
  }
  for (std::uint16_t q = 0; q < kQueues; ++q) {
    EXPECT_EQ(gets_per_flow[q], static_cast<std::size_t>(kGetRounds));
    EXPECT_EQ(w.server->queue_requests(q), static_cast<std::uint64_t>(kGetRounds + 1));
    EXPECT_EQ(w.server->shard_size(q), 1u);
  }
  EXPECT_EQ(w.server->requests(), static_cast<std::uint64_t>(kQueues * (kGetRounds + 1)));

  // The shared-nothing audit: no loop ever touched a foreign shard, and the
  // ring mesh stayed silent — shard-aligned traffic needs no messages.
  for (std::uint16_t accessor = 0; accessor < kQueues; ++accessor) {
    for (std::uint16_t shard = 0; shard < kQueues; ++shard) {
      if (accessor != shard) {
        EXPECT_EQ(w.server->shard_accesses(accessor, shard), 0u)
            << "loop " << accessor << " read shard " << shard;
      } else {
        EXPECT_GT(w.server->shard_accesses(accessor, shard), 0u);
      }
    }
  }
  EXPECT_EQ(w.server->ring_messages(), 0u);
  EXPECT_EQ(w.server->cross_shard_ops(), 0u);
  // Blocking loops really slept (this is the scale-out loop body, not a spin).
  EXPECT_GT(w.server->wait_stats().blocked_waits, 0u);
  guard.ExpectPoolFlat("4-shard steady-state GET/SET");
}

// ---- Cross-shard operations: messages, not memory -------------------------------

// A multi-get spanning all four shards arrives on one queue while every other
// flow keeps hammering its own shard. The reply must assemble all four values
// correctly, the foreign keys must travel as ring messages executed by their
// owners, and the off-diagonal access audit must STILL be zero: cross-shard
// ops cross the core boundary as data, never as loads from a foreign shard.
TEST(SmpShard, CrossShardMultiGetUnderConcurrentLoad) {
  constexpr std::uint16_t kQueues = 4;
  KvWorld w(kQueues);
  ASSERT_TRUE(w.server->Start());
  ASSERT_EQ(w.server->queue_count(), kQueues);

  std::uint16_t port[kQueues];
  std::uint16_t key[kQueues];
  std::string value[kQueues];
  for (std::uint16_t q = 0; q < kQueues; ++q) {
    port[q] = PortForQueue(q, kQueues);
    key[q] = KeyForShard(q, kQueues);
    value[q] = "v" + std::to_string(q);
  }
  auto pump_all = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      for (std::uint16_t q = 0; q < kQueues; ++q) {
        w.server->PumpQueue(q);
      }
    }
  };

  // Seed all four shards through their own flows (local fast path).
  for (std::uint16_t q = 0; q < kQueues; ++q) {
    apps::KvRequest set{true, key[q], value[q]};
    w.wire.Send(1, KvFrame(w.nic->mac(), port[q], apps::EncodeKvRequest(set)));
  }
  pump_all(8);
  std::vector<Reply> replies;
  DrainReplies(w.wire, &replies);
  ASSERT_EQ(replies.size(), static_cast<std::size_t>(kQueues));
  replies.clear();
  ASSERT_EQ(w.server->ring_messages(), 0u);

  // The multi-get lands on queue 0's flow; three of its keys live elsewhere.
  // Concurrent load: every flow fires local GETs in the same burst, so the
  // rings drain interleaved with regular traffic.
  const std::uint16_t mkeys[kQueues] = {key[0], key[1], key[2], key[3]};
  w.wire.Send(1, KvFrame(w.nic->mac(), port[0], apps::EncodeKvMultiGet(mkeys)));
  constexpr int kLoadRounds = 10;
  for (int r = 0; r < kLoadRounds; ++r) {
    for (std::uint16_t q = 0; q < kQueues; ++q) {
      apps::KvRequest get{false, key[q], ""};
      w.wire.Send(1, KvFrame(w.nic->mac(), port[q], apps::EncodeKvRequest(get)));
    }
  }
  pump_all(30);
  DrainReplies(w.wire, &replies);
  ASSERT_EQ(replies.size(), 1u + kQueues * kLoadRounds);

  // Find and decode the 'V' reply: 'V', n, then n * (u16 LE len + bytes).
  int v_replies = 0;
  for (const Reply& r : replies) {
    if (r.port != port[0] || r.payload.empty() || r.payload[0] != 'V') {
      continue;
    }
    ++v_replies;
    ASSERT_GE(r.payload.size(), 2u);
    ASSERT_EQ(r.payload[1], kQueues);
    std::size_t at = 2;
    for (std::uint16_t q = 0; q < kQueues; ++q) {
      ASSERT_GE(r.payload.size(), at + 2);
      const std::uint16_t len = static_cast<std::uint16_t>(
          r.payload[at] | (r.payload[at + 1] << 8));
      at += 2;
      ASSERT_NE(len, 0xffff) << "key " << mkeys[q] << " reported missing";
      ASSERT_GE(r.payload.size(), at + len);
      EXPECT_EQ(std::string(r.payload.begin() + static_cast<std::ptrdiff_t>(at),
                            r.payload.begin() + static_cast<std::ptrdiff_t>(at + len)),
                value[q]);
      at += len;
    }
    EXPECT_EQ(at, r.payload.size());
  }
  EXPECT_EQ(v_replies, 1);

  // Three foreign keys: one kGet out and one kResp back each, plus whatever
  // the concurrent load DIDN'T add (local GETs never ring).
  EXPECT_EQ(w.server->cross_shard_ops(), 1u);
  EXPECT_EQ(w.server->ring_messages(), 6u);
  for (std::uint16_t accessor = 0; accessor < kQueues; ++accessor) {
    for (std::uint16_t shard = 0; shard < kQueues; ++shard) {
      if (accessor != shard) {
        EXPECT_EQ(w.server->shard_accesses(accessor, shard), 0u)
            << "cross-shard op read shard " << shard << " from loop " << accessor;
      }
    }
  }

  // Cross-shard single-key ops: a SET for queue 1's key arriving on queue 0
  // executes on shard 1 (via its owner) and is visible to queue 1's flow.
  apps::KvRequest xset{true, key[1], "cross"};
  w.wire.Send(1, KvFrame(w.nic->mac(), port[0], apps::EncodeKvRequest(xset)));
  pump_all(10);
  replies.clear();
  DrainReplies(w.wire, &replies);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].port, port[0]);
  EXPECT_EQ(std::string(replies[0].payload.begin(), replies[0].payload.end()), "K");

  apps::KvRequest xget{false, key[1], ""};
  w.wire.Send(1, KvFrame(w.nic->mac(), port[1], apps::EncodeKvRequest(xget)));
  pump_all(10);
  replies.clear();
  DrainReplies(w.wire, &replies);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(std::string(replies[0].payload.begin(), replies[0].payload.end()),
            "cross");
  EXPECT_EQ(w.server->cross_shard_ops(), 2u);
  for (std::uint16_t accessor = 0; accessor < kQueues; ++accessor) {
    for (std::uint16_t shard = 0; shard < kQueues; ++shard) {
      if (accessor != shard) {
        EXPECT_EQ(w.server->shard_accesses(accessor, shard), 0u);
      }
    }
  }
}

// ---- TX-pool refill: writable readiness instead of busy retries -----------------

class SmallTxPoolTest : public netharness::TwoHostTest {
 protected:
  // 8 buffers per pool: small enough to exhaust by hand.
  SmallTxPoolTest() : TwoHostTest(1, 8) {}
};

struct EdgeRecorder : uknet::SocketEventSink {
  uknet::EventMask mask = 0;
  std::uint64_t count = 0;
  void OnSocketEvent(std::uint64_t, uknet::EventMask ev) override {
    mask |= ev;
    ++count;
  }
};

TEST_F(SmallTxPoolTest, TxPoolRefillRaisesWritableEdge) {
  auto listener = b_.stack->TcpListen(4242);
  auto client = a_.stack->TcpConnect(MakeIp(10, 0, 0, 2), 4242);
  ASSERT_TRUE(PumpUntil([&] { return client->connected() && listener->backlog() > 0; }));
  auto srv = listener->Accept();
  ASSERT_NE(srv, nullptr);
  // Quiesce: the handshake segments get ACKed and their buffers return.
  PumpUntil([] { return false; }, 20);

  EdgeRecorder sink;
  client->SetEventSink(&sink, 1);

  // Drain the client's TX pool dry (the failed tail Alloc arms the edge).
  std::vector<uknetdev::NetBuf*> held;
  while (uknetdev::NetBuf* nb = a_.netif->AllocTxBuf()) {
    held.push_back(nb);
  }
  ASSERT_FALSE(held.empty());
  const uknetdev::NetBufPool* pool = a_.netif->tx_pool(0);
  const std::uint64_t edges_before = pool->refill_edges();

  // Send against the dry pool: nothing is accepted, the socket goes starved.
  std::uint8_t data[64];
  std::memset(data, 'x', sizeof(data));
  EXPECT_EQ(client->Send(data), 0);
  sink.mask = 0;

  // The FIRST buffer returning to the dry pool must fire exactly one refill
  // edge, which surfaces on the starved socket as a kEvtWritable edge — the
  // event a flush loop parks on instead of busy-retrying Send().
  a_.netif->FreeTxBuf(held.back());
  held.pop_back();
  EXPECT_EQ(pool->refill_edges(), edges_before + 1);
  EXPECT_NE(sink.mask & kEvtWritable, 0u) << "no writable edge on pool refill";

  // Further returns to a non-starved pool stay silent (edge, not level).
  sink.mask = 0;
  a_.netif->FreeTxBuf(held.back());
  held.pop_back();
  EXPECT_EQ(pool->refill_edges(), edges_before + 1);
  EXPECT_EQ(sink.mask & kEvtWritable, 0u);

  // And the send path actually recovered end to end.
  for (uknetdev::NetBuf* nb : held) {
    a_.netif->FreeTxBuf(nb);
  }
  held.clear();
  EXPECT_EQ(client->Send(data), 64);
  std::uint8_t rx[64];
  std::size_t got = 0;
  ASSERT_TRUE(PumpUntil([&] {
    std::int64_t n = srv->Recv(std::span<std::uint8_t>(rx).subspan(got));
    if (n > 0) {
      got += static_cast<std::size_t>(n);
    }
    return got == sizeof(rx);
  }));
  EXPECT_EQ(rx[0], 'x');
  client->SetEventSink(nullptr, 0);
}

// ---- real OS threads: the SPSC contract under true concurrency -----------------
//
// The fiber tests above exercise the ring's logic; these exercise its MEMORY
// MODEL. A real producer std::thread races a real consumer, so the
// acquire/release pairs on head_/tail_ are the only thing standing between
// FIFO order and torn slots — exactly what the TSan CI leg checks.

TEST(SpscRingRealThreads, FifoSurvivesWraparoundWithConcurrentProducer) {
  uksched::SpscRing<int, 8> ring;
  // >> capacity: the free-running indices wrap the mask thousands of times
  // while both sides are live.
  constexpr int kItems = 200000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      while (!ring.Push(i)) {
        std::this_thread::yield();  // full ring is backpressure, never loss
      }
    }
  });
  int expect = 0;
  while (expect < kItems) {
    int out = -1;
    if (ring.Pop(&out)) {
      ASSERT_EQ(out, expect);  // strict FIFO across every wrap
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingRealThreads, FullRingBackpressureLosesNothing) {
  // Tiny ring: nearly every Push contends with a full ring, so the
  // retry-after-reject path (the backpressure contract) runs constantly.
  uksched::SpscRing<std::uint64_t, 4> ring;
  constexpr std::uint64_t kItems = 20000;
  std::atomic<std::uint64_t> rejects{0};
  std::thread producer([&] {
    for (std::uint64_t i = 1; i <= kItems; ++i) {
      while (!ring.Push(i)) {
        rejects.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t sum = 0;
  std::uint64_t got = 0;
  while (got < kItems) {
    std::uint64_t v = 0;
    if (ring.Pop(&v)) {
      sum += v;
      ++got;
    } else {
      std::this_thread::yield();  // starving the producer helps nobody
    }
  }
  producer.join();
  // Every rejected push was retried until accepted: each value arrived
  // exactly once (the sum is order-insensitive proof).
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
  EXPECT_TRUE(ring.empty());
}

TEST(WaitQueueRealThreads, WakeOneNeverLosesTheDoorbell) {
  // The shard-mailbox discipline end to end on real threads: a FOREIGN OS
  // thread plays the producing loop (push, bump seq with release, ring
  // WakeOne) while a ThreadScheduler-hosted consumer drains and parks with
  // WaitTimeoutUnless. A lost doorbell would strand the consumer in an
  // untimed park and hang the test; kNoDeadline is deliberate — a finite
  // timeout would paper over exactly the race this asserts against.
  constexpr std::size_t kHeap = 8 << 20;
  auto mem = std::make_unique<std::byte[]>(kHeap);
  auto alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf, mem.get(), kHeap);
  ukplat::Clock clock;
  uksched::ThreadScheduler sched(alloc.get(), &clock);
  uksched::WaitQueue wq(&sched);
  uksched::SpscRing<int, 8> ring;
  std::atomic<std::uint64_t> seq{0};
  constexpr int kItems = 512;
  int consumed = 0;
  sched.CreateThread("consumer", [&] {
    while (consumed < kItems) {
      int v = 0;
      // Drain, snapshot the doorbell, drain AGAIN, then park-unless-moved:
      // the producer's bump is either seen by the check (no sleep) or
      // ordered before the wake (we are already in the queue).
      while (ring.Pop(&v)) {
        ++consumed;
      }
      if (consumed >= kItems) {
        break;
      }
      const std::uint64_t seen = seq.load(std::memory_order_acquire);
      while (ring.Pop(&v)) {
        ++consumed;
      }
      if (consumed >= kItems) {
        break;
      }
      wq.WaitTimeoutUnless(seq, seen, uksched::Scheduler::kNoDeadline);
    }
  });
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      while (!ring.Push(i)) {
        std::this_thread::yield();
      }
      seq.fetch_add(1, std::memory_order_release);  // publish-then-ring
      wq.WakeOne();
      if ((i & 63) == 0) {
        // Let the consumer actually reach the parked state sometimes, so the
        // wake-a-sleeper path runs and not only the check-skips-park path.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  });
  EXPECT_EQ(sched.Run(), 0u);  // consumer terminated; nobody left parked
  producer.join();
  EXPECT_EQ(consumed, kItems);
  EXPECT_TRUE(ring.empty());
}

// ---- RCU: the registry reclamation protocol ------------------------------------

TEST(RcuDomain, GraceWaitsForEveryOnlineReader) {
  uklock::RcuDomain dom;
  dom.Quiescent(0);  // two reader loops online
  dom.Quiescent(1);
  bool reclaimed = false;
  dom.Retire([&] { reclaimed = true; });
  EXPECT_EQ(dom.pending(), 1u);
  dom.Quiescent(0);  // one loop announced past the retire epoch...
  EXPECT_FALSE(reclaimed);  // ...but the other may still hold the old version
  dom.Quiescent(1);
  EXPECT_TRUE(reclaimed);
  EXPECT_EQ(dom.pending(), 0u);
}

TEST(RcuDomain, OfflineReaderStopsBlockingGrace) {
  uklock::RcuDomain dom;
  dom.Quiescent(0);
  dom.Quiescent(1);
  bool reclaimed = false;
  dom.Retire([&] { reclaimed = true; });
  dom.Quiescent(0);
  EXPECT_FALSE(reclaimed);
  dom.Offline(1);  // that loop exited: it can hold no reference
  dom.Quiescent(0);
  EXPECT_TRUE(reclaimed);
}

TEST(RcuDomain, SynchronizeDrainsAllPending) {
  uklock::RcuDomain dom;
  dom.Quiescent(0);
  int runs = 0;
  for (int i = 0; i < 5; ++i) {
    dom.Retire([&] { ++runs; });
  }
  EXPECT_EQ(dom.pending(), 5u);
  EXPECT_EQ(dom.Synchronize(), 5u);
  EXPECT_EQ(runs, 5);
  EXPECT_EQ(dom.pending(), 0u);
}

TEST(RcuRegistry, SnapshotIsolationAcrossCopyOnWriteUpdates) {
  uklock::RcuDomain dom;
  uklock::RcuRegistry<int, int> reg(&dom);
  dom.Quiescent(0);
  reg.Insert(1, 10);
  const auto* snap = reg.Read();
  ASSERT_EQ(snap->count(1), 1u);
  // Writers publish whole new versions; the snapshot this "loop turn" holds
  // must never change underneath it.
  reg.Insert(2, 20);
  reg.Erase(1);
  EXPECT_EQ(snap->count(1), 1u);
  EXPECT_EQ(snap->count(2), 0u);
  const auto* now = reg.Read();
  EXPECT_EQ(now->count(1), 0u);
  EXPECT_EQ(now->count(2), 1u);
  // The superseded versions were retired, not freed — our snapshot is one of
  // them and we are still mid-turn.
  EXPECT_GT(dom.pending(), 0u);
  dom.Quiescent(0);  // turn boundary: no pre-turn references remain
  EXPECT_EQ(dom.pending(), 0u);
}

TEST(RcuRegistry, RealThreadReaderIteratesWhileWriterChurns) {
  // A real reader thread takes snapshots and walks them with NO lock while
  // the main thread inserts and erases. Every map it can observe is an
  // immutable published version whose invariant (*value == key) held at
  // publication; a reclamation racing the walk would be a use-after-free
  // that TSan/ASan-grade runs catch and the invariant check trips on.
  uklock::RcuDomain dom;
  uklock::RcuRegistry<int, std::shared_ptr<int>> reg(&dom);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> turns{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto* snap = reg.Read();
      for (const auto& [k, v] : *snap) {
        if (v == nullptr || *v != k) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
      dom.Quiescent(1);  // turn boundary: done with this snapshot
      turns.fetch_add(1, std::memory_order_relaxed);
    }
    dom.Offline(1);
  });
  for (int round = 0; round < 400; ++round) {
    const int k = round % 16;
    reg.Insert(k, std::make_shared<int>(k));
    if (round % 3 == 2) {
      reg.Erase((k + 8) % 16);
    }
  }
  // Make sure the reader got real overlap with the churn before stopping.
  const std::uint64_t seen = turns.load(std::memory_order_relaxed);
  while (turns.load(std::memory_order_relaxed) < seen + 3) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(mismatches.load(), 0u);
  dom.Synchronize();
  EXPECT_EQ(dom.pending(), 0u);
}

// ---- NetStack: connection registry reclaims at Poll turn boundaries ------------

using RcuStackTest = netharness::TwoHostTest;

TEST_F(RcuStackTest, ConnRegistryRetiresThroughPollTurns) {
  const std::size_t conns_before = a_.stack->tcp_conn_count();
  auto listener = b_.stack->TcpListen(4343);
  auto client = a_.stack->TcpConnect(MakeIp(10, 0, 0, 2), 4343);
  ASSERT_TRUE(PumpUntil([&] { return client->connected() && listener->backlog() > 0; }));
  auto srv = listener->Accept();
  ASSERT_NE(srv, nullptr);
  EXPECT_EQ(a_.stack->tcp_conn_count(), conns_before + 1);
  // Each CoW publish during the handshake retired an old registry version;
  // the Poll turns that pumped it announced quiescence, so nothing lingers.
  EXPECT_EQ(a_.stack->rcu_pending(), 0u);
  EXPECT_EQ(b_.stack->rcu_pending(), 0u);

  client->Close();
  // Teardown unlinks the connection through more CoW updates; the retired
  // versions drain through subsequent turn boundaries, never mid-turn.
  ASSERT_TRUE(PumpUntil([&] {
    return a_.stack->rcu_pending() == 0 && b_.stack->rcu_pending() == 0;
  }));
}

}  // namespace
