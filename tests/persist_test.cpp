// Tests for the persistence tier (apps::Persist): per-turn AOF batching and
// fsync policies, chunked background snapshots with the COW-lite pre-image
// log, crash-recovery ordering (newest valid snapshot + AOF tail), and the
// durability wiring of both servers (ukredis SAVE/BGSAVE/WAITAOF, kvstore
// per-queue shards) — all over blockfs on a ramdisk, the same stack the fleet
// testbed boots.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apps/kvstore.h"
#include "apps/persist.h"
#include "apps/redis.h"
#include "apps/resp.h"
#include "env/testbed.h"
#include "net_harness.h"
#include "posix/api.h"
#include "ukarch/hash.h"
#include "ukblockdev/ramdisk.h"
#include "vfscore/blockfs.h"
#include "vfscore/vfs.h"

namespace {

using apps::Persist;

// A transparent-comparator map standing in for a server store: string_view
// lookups without materializing keys, stable value storage for the Source's
// string_view returns.
using KvMap = std::map<std::string, std::string, std::less<>>;

Persist::Source MapSource(KvMap* m) {
  Persist::Source s;
  s.capture = [m](std::uint16_t, std::vector<std::string>* keys) {
    for (const auto& [k, v] : *m) {
      keys->push_back(k);
    }
  };
  s.lookup = [m](std::uint16_t,
                 std::string_view key) -> std::optional<std::string_view> {
    auto it = m->find(key);
    if (it == m->end()) {
      return std::nullopt;
    }
    return std::string_view(it->second);
  };
  return s;
}

Persist::Applier MapApplier(KvMap* m) {
  Persist::Applier a;
  a.set = [m](std::uint16_t, std::string_view k, std::string_view v) {
    (*m)[std::string(k)] = std::string(v);
  };
  a.del = [m](std::uint16_t, std::string_view k) {
    auto it = m->find(k);
    if (it != m->end()) {
      m->erase(it);
    }
  };
  a.clear = [m](std::uint16_t) { m->clear(); };
  return a;
}

// Unit-test world: one ramdisk whose backing bytes survive "reboots"
// (Remount() rebuilds the filesystem object over the same device, exactly
// what the fleet's kRootfs inittab stage does on respawn).
class PersistTest : public ::testing::Test {
 protected:
  PersistTest() : mem_(8 << 20), disk_(&mem_, /*sectors=*/8192) { Remount(); }

  void Remount() {
    if (fs_ != nullptr) {
      vfs_.Unmount("/persist");
    }
    fs_ = std::make_unique<vfscore::BlockFs>(&disk_, &mem_);
    ASSERT_TRUE(ukarch::Ok(fs_->EnsureFormatted()));
    ASSERT_TRUE(ukarch::Ok(vfs_.Mount("/persist", fs_.get())));
  }

  bool Exists(const std::string& path) {
    vfscore::NodeStat st;
    return ukarch::Ok(vfs_.Stat(path, &st));
  }

  std::unique_ptr<Persist> MakePersist(Persist::Config cfg, KvMap* store) {
    cfg.dir = "/persist";
    auto p = std::make_unique<Persist>(&vfs_, cfg);
    p->SetSource(MapSource(store));
    return p;
  }

  ukplat::MemRegion mem_;
  ukblockdev::RamDisk disk_;
  vfscore::Vfs vfs_;
  std::unique_ptr<vfscore::BlockFs> fs_;
};

// ---- AOF batching + fsync policies ------------------------------------------------

TEST_F(PersistTest, AofIsBatchedPerTurnAndReplayedOnBoot) {
  KvMap store;
  auto p = MakePersist({}, &store);  // default: kEveryTurn
  KvMap empty;
  p->Recover(MapApplier(&empty));

  p->AppendSet(0, "alpha", "1");
  p->AppendSet(0, "beta", "2");
  p->AppendSet(0, "gone", "3");
  p->AppendDel(0, "gone");
  // Buffered only: nothing reaches the filesystem until the turn ends.
  EXPECT_FALSE(Exists("/persist/aof-0-s0"));
  EXPECT_EQ(p->stats().aof_writes, 0u);

  const std::uint64_t flushes_before = disk_.flushes();
  p->OnTurnEnd();
  EXPECT_TRUE(Exists("/persist/aof-0-s0"));
  EXPECT_EQ(p->stats().aof_appends, 4u);
  EXPECT_EQ(p->stats().aof_writes, 1u);  // one write for the whole turn
  EXPECT_EQ(p->stats().fsyncs, 1u);
  EXPECT_EQ(disk_.flushes(), flushes_before + 1);
  // Idle turns cost nothing: no write, no barrier.
  p->OnTurnEnd();
  EXPECT_EQ(p->stats().aof_writes, 1u);
  EXPECT_EQ(p->stats().fsyncs, 1u);

  // Boot: a fresh Persist over the same directory replays the log.
  KvMap recovered;
  auto p2 = MakePersist({}, &recovered);
  Persist::RecoverStats rs = p2->Recover(MapApplier(&recovered));
  EXPECT_FALSE(rs.snapshot_loaded);
  EXPECT_EQ(rs.aof_segments, 1u);
  EXPECT_EQ(rs.aof_commands, 4u);
  EXPECT_FALSE(rs.aof_tail_truncated);
  EXPECT_EQ(recovered, (KvMap{{"alpha", "1"}, {"beta", "2"}}));
}

TEST_F(PersistTest, FsyncPolicyKnobControlsTheBarrier) {
  KvMap store;
  // kAlways: every append writes through and barriers immediately.
  {
    Persist::Config cfg;
    cfg.fsync = Persist::FsyncPolicy::kAlways;
    auto p = MakePersist(cfg, &store);
    const std::uint64_t before = disk_.flushes();
    p->AppendSet(0, "a", "1");
    EXPECT_EQ(p->stats().aof_writes, 1u);
    EXPECT_EQ(disk_.flushes(), before + 1);
    p->AppendSet(0, "b", "2");
    EXPECT_EQ(p->stats().aof_writes, 2u);
    EXPECT_EQ(disk_.flushes(), before + 2);
  }
  // kOff: turn-end writes the file but never barriers; FsyncNow (the
  // WAIT-style barrier) still forces one through regardless of policy.
  {
    Persist::Config cfg;
    cfg.fsync = Persist::FsyncPolicy::kOff;
    auto p = MakePersist(cfg, &store);
    const std::uint64_t before = disk_.flushes();
    p->AppendSet(0, "c", "3");
    p->OnTurnEnd();
    EXPECT_EQ(p->stats().aof_writes, 1u);
    EXPECT_EQ(p->stats().fsyncs, 0u);
    EXPECT_EQ(disk_.flushes(), before);
    EXPECT_TRUE(p->FsyncNow());
    EXPECT_EQ(p->stats().fsyncs, 1u);
    EXPECT_EQ(disk_.flushes(), before + 1);
  }
}

TEST_F(PersistTest, TruncatedAofTailIsTolerated) {
  KvMap store;
  {
    auto p = MakePersist({}, &store);
    p->AppendSet(0, "whole", "v");
    p->AppendSet(0, "keep", "w");
    p->OnTurnEnd();
  }
  // The torn write of a hard kill: a record that stops mid-bulk. The RESP
  // parser never completes it, so replay applies everything before it and
  // flags the tail.
  {
    std::shared_ptr<vfscore::File> f;
    ASSERT_TRUE(ukarch::Ok(vfs_.Open("/persist/aof-0-s0",
                                     vfscore::kWrite | vfscore::kAppend, &f)));
    std::string_view torn = "*3\r\n$3\r\nSET\r\n$4\r\ntorn\r\n$8\r\nab";
    f->Write(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(torn.data()), torn.size()));
  }
  KvMap recovered;
  auto p2 = MakePersist({}, &recovered);
  Persist::RecoverStats rs = p2->Recover(MapApplier(&recovered));
  EXPECT_EQ(rs.aof_commands, 2u);
  EXPECT_TRUE(rs.aof_tail_truncated);
  EXPECT_EQ(recovered, (KvMap{{"whole", "v"}, {"keep", "w"}}));
}

// ---- snapshots --------------------------------------------------------------------

TEST_F(PersistTest, SaveNowWritesACrcValidSnapshot) {
  KvMap store{{"a", "1"}, {"b", "two"}, {"c", std::string(300, 'x')}};
  {
    auto p = MakePersist({}, &store);
    KvMap empty;
    p->Recover(MapApplier(&empty));
    ASSERT_TRUE(p->SaveNow());
    EXPECT_EQ(p->stats().snapshots_completed, 1u);
    EXPECT_TRUE(Exists("/persist/dump-1.rdb"));
  }
  Remount();  // reboot: brand-new filesystem object over the same disk
  KvMap recovered;
  auto p2 = MakePersist({}, &recovered);
  Persist::RecoverStats rs = p2->Recover(MapApplier(&recovered));
  EXPECT_TRUE(rs.snapshot_loaded);
  EXPECT_EQ(rs.snapshot_gen, 1u);
  EXPECT_EQ(rs.snapshot_keys, 3u);
  EXPECT_EQ(rs.aof_commands, 0u);
  EXPECT_EQ(recovered, store);
}

TEST_F(PersistTest, AofTailReplaysOverTheSnapshot) {
  KvMap store{{"a", "old"}, {"b", "kept"}};
  auto p = MakePersist({}, &store);
  KvMap empty;
  p->Recover(MapApplier(&empty));
  ASSERT_TRUE(p->SaveNow());
  // Post-snapshot mutations land in the sealed-forward AOF tail.
  store["a"] = "new";
  p->AppendSet(0, "a", "new");
  store["c"] = "late";
  p->AppendSet(0, "c", "late");
  store.erase("b");
  p->AppendDel(0, "b");
  p->OnTurnEnd();

  KvMap recovered;
  auto p2 = MakePersist({}, &recovered);
  Persist::RecoverStats rs = p2->Recover(MapApplier(&recovered));
  EXPECT_TRUE(rs.snapshot_loaded);
  EXPECT_EQ(rs.aof_commands, 3u);
  EXPECT_EQ(recovered, (KvMap{{"a", "new"}, {"c", "late"}}));
}

TEST_F(PersistTest, CorruptSnapshotFallsBackToOlderGeneration) {
  KvMap store{{"k", "gen1"}};
  auto p = MakePersist({}, &store);
  KvMap empty;
  p->Recover(MapApplier(&empty));
  ASSERT_TRUE(p->SaveNow());
  store["k"] = "gen2";
  ASSERT_TRUE(p->SaveNow());
  ASSERT_TRUE(Exists("/persist/dump-2.rdb"));

  // Flip one body byte of the newest generation: the CRC trailer no longer
  // matches, so recovery must reject it and fall back to generation 1.
  {
    std::shared_ptr<vfscore::File> f;
    ASSERT_TRUE(ukarch::Ok(
        vfs_.Open("/persist/dump-2.rdb", vfscore::kRead | vfscore::kWrite, &f)));
    std::byte b{};
    ASSERT_EQ(f->ReadAt(30, std::span<std::byte>(&b, 1)), 1);
    b ^= std::byte{0x5a};
    ASSERT_EQ(f->WriteAt(30, std::span<const std::byte>(&b, 1)), 1);
  }

  KvMap recovered;
  auto p2 = MakePersist({}, &recovered);
  Persist::RecoverStats rs = p2->Recover(MapApplier(&recovered));
  EXPECT_TRUE(rs.snapshot_loaded);
  EXPECT_EQ(rs.snapshot_gen, 1u);
  EXPECT_EQ(rs.snapshots_rejected, 1u);
  EXPECT_EQ(recovered, (KvMap{{"k", "gen1"}}));
  // The rejected file was unlinked so it can never shadow gen 1 again.
  EXPECT_FALSE(Exists("/persist/dump-2.rdb"));
}

TEST_F(PersistTest, BackgroundSaveBoundsBytesPerTurn) {
  KvMap store;
  for (int i = 0; i < 300; ++i) {
    char key[8];
    std::snprintf(key, sizeof key, "k%03d", i);
    store[key] = std::string(48, 'v');
  }
  Persist::Config cfg;
  cfg.snapshot_chunk_bytes = 512;
  auto p = MakePersist(cfg, &store);
  KvMap empty;
  p->Recover(MapApplier(&empty));

  ASSERT_TRUE(p->StartBackgroundSave());
  EXPECT_TRUE(p->save_active());
  int turns = 0;
  while (p->save_active() && turns < 10'000) {
    p->OnTurnEnd();
    ++turns;
  }
  ASSERT_FALSE(p->save_active());
  EXPECT_EQ(p->stats().snapshots_completed, 1u);
  // The bounded-pause ledger: the save took many turns, and no single turn
  // moved more than the budget plus one record (the forced-progress bound;
  // record = 10-byte header + 4-byte key + 48-byte value).
  EXPECT_GT(p->stats().snapshot_turns, 1u);
  EXPECT_LE(p->stats().max_turn_snapshot_bytes, 512u + (10 + 4 + 48));

  KvMap recovered;
  auto p2 = MakePersist({}, &recovered);
  Persist::RecoverStats rs = p2->Recover(MapApplier(&recovered));
  EXPECT_TRUE(rs.snapshot_loaded);
  EXPECT_EQ(rs.snapshot_keys, 300u);
  EXPECT_EQ(recovered, store);
}

TEST_F(PersistTest, CowPreimageKeepsTheSnapshotPointInTime) {
  KvMap store;
  for (int i = 0; i < 200; ++i) {
    char key[8];
    std::snprintf(key, sizeof key, "k%03d", i);
    store[key] = "old";
  }
  Persist::Config cfg;
  cfg.snapshot_chunk_bytes = 256;
  auto p = MakePersist(cfg, &store);
  KvMap empty;
  p->Recover(MapApplier(&empty));
  ASSERT_TRUE(p->StartBackgroundSave());

  // Mutate ahead of the cursor, exactly as a server would: PreMutate first
  // (pre-image into the side log), then the store write, then the AOF record.
  p->PreMutate(0, "k150");
  store["k150"] = "new";
  p->AppendSet(0, "k150", "new");
  p->PreMutate(0, "k100");
  store.erase("k100");
  p->AppendDel(0, "k100");

  int turns = 0;
  while (p->save_active() && turns < 10'000) {
    p->OnTurnEnd();
    ++turns;
  }
  ASSERT_FALSE(p->save_active());
  EXPECT_EQ(p->stats().cow_preimages, 2u);

  // Full recovery: snapshot pre-images are superseded by the AOF tail.
  KvMap full;
  auto p2 = MakePersist({}, &full);
  p2->Recover(MapApplier(&full));
  EXPECT_EQ(full["k150"], "new");
  EXPECT_FALSE(full.contains("k100"));
  EXPECT_EQ(full["k000"], "old");

  // Snapshot-only recovery (tail removed): the file must hold the state as
  // of StartBackgroundSave() — both mutated keys at their pre-images.
  vfs_.Unlink("/persist/aof-1-s0");
  KvMap snap_only;
  auto p3 = MakePersist({}, &snap_only);
  Persist::RecoverStats rs = p3->Recover(MapApplier(&snap_only));
  EXPECT_TRUE(rs.snapshot_loaded);
  EXPECT_EQ(rs.snapshot_keys, 200u);
  EXPECT_EQ(snap_only["k150"], "old");
  EXPECT_EQ(snap_only["k100"], "old");
}

TEST_F(PersistTest, AbortedSaveUnlinksThePartialFile) {
  KvMap store;
  for (int i = 0; i < 100; ++i) {
    store["key" + std::to_string(i)] = std::string(64, 'a');
  }
  Persist::Config cfg;
  cfg.snapshot_chunk_bytes = 128;
  auto p = MakePersist(cfg, &store);
  KvMap empty;
  p->Recover(MapApplier(&empty));

  ASSERT_TRUE(p->StartBackgroundSave());
  p->OnTurnEnd();  // a little progress: the partial file exists on disk
  ASSERT_TRUE(p->save_active());
  ASSERT_TRUE(Exists("/persist/dump-1.rdb"));
  // FLUSHALL semantics: the captured key list is invalid, drop the save.
  p->AbortSave();
  EXPECT_FALSE(p->save_active());
  EXPECT_EQ(p->stats().snapshots_aborted, 1u);
  EXPECT_FALSE(Exists("/persist/dump-1.rdb"));

  store.clear();
  p->AppendClear(0);
  store["solo"] = "v";
  p->AppendSet(0, "solo", "v");
  p->OnTurnEnd();

  // Seed the recovery target with stale state: only an applied FLUSHALL can
  // remove it, which is how we know the clear was replayed.
  KvMap recovered{{"stale", "1"}};
  auto p2 = MakePersist({}, &recovered);
  Persist::RecoverStats rs = p2->Recover(MapApplier(&recovered));
  EXPECT_FALSE(rs.snapshot_loaded);
  EXPECT_EQ(recovered, (KvMap{{"solo", "v"}}));
}

TEST_F(PersistTest, RetentionKeepsTwoGenerationsAndDropsDeadSegments) {
  KvMap store;
  auto p = MakePersist({}, &store);
  KvMap empty;
  p->Recover(MapApplier(&empty));

  store["a"] = "1";
  p->AppendSet(0, "a", "1");
  p->OnTurnEnd();  // aof-0-s0
  ASSERT_TRUE(p->SaveNow());  // gen 1 covers segment 0
  store["b"] = "2";
  p->AppendSet(0, "b", "2");
  p->OnTurnEnd();  // aof-1-s0
  ASSERT_TRUE(p->SaveNow());  // gen 2 covers segment 1
  store["c"] = "3";
  p->AppendSet(0, "c", "3");
  p->OnTurnEnd();  // aof-2-s0
  ASSERT_TRUE(p->SaveNow());  // gen 3: retention point

  // Two newest generations retained; every segment covered by BOTH gone.
  EXPECT_FALSE(Exists("/persist/dump-1.rdb"));
  EXPECT_TRUE(Exists("/persist/dump-2.rdb"));
  EXPECT_TRUE(Exists("/persist/dump-3.rdb"));
  EXPECT_FALSE(Exists("/persist/aof-0-s0"));
  EXPECT_FALSE(Exists("/persist/aof-1-s0"));
  EXPECT_TRUE(Exists("/persist/aof-2-s0"));

  Remount();
  KvMap recovered;
  auto p2 = MakePersist({}, &recovered);
  Persist::RecoverStats rs = p2->Recover(MapApplier(&recovered));
  EXPECT_EQ(rs.snapshot_gen, 3u);
  EXPECT_EQ(recovered, (KvMap{{"a", "1"}, {"b", "2"}, {"c", "3"}}));
}

TEST_F(PersistTest, RecoveryPrimesAFreshSegment) {
  KvMap store;
  {
    auto p = MakePersist({}, &store);
    KvMap empty;
    p->Recover(MapApplier(&empty));
    EXPECT_EQ(p->current_segment(), 0u);
    store["k1"] = "v1";
    p->AppendSet(0, "k1", "v1");
    p->OnTurnEnd();
  }
  Remount();
  {
    // Appends after a recovery never touch the possibly-torn old tail: they
    // open segment max+1.
    KvMap recovered;
    auto p = MakePersist({}, &recovered);
    p->Recover(MapApplier(&recovered));
    EXPECT_EQ(recovered, (KvMap{{"k1", "v1"}}));
    EXPECT_EQ(p->current_segment(), 1u);
    p->AppendSet(0, "k2", "v2");
    p->OnTurnEnd();
    EXPECT_TRUE(Exists("/persist/aof-0-s0"));
    EXPECT_TRUE(Exists("/persist/aof-1-s0"));
  }
  Remount();
  KvMap recovered;
  auto p = MakePersist({}, &recovered);
  Persist::RecoverStats rs = p->Recover(MapApplier(&recovered));
  EXPECT_EQ(rs.aof_segments, 2u);
  EXPECT_EQ(p->current_segment(), 2u);
  EXPECT_EQ(recovered, (KvMap{{"k1", "v1"}, {"k2", "v2"}}));
}

// ---- ukredis end-to-end -----------------------------------------------------------

// Redis over the real stack with a blockfs-backed /persist on the server
// host: the durability commands travel as RESP, and a second server instance
// recovering from the same directory is the in-process stand-in for a
// reboot (the fleet test does it across a real Instance Shutdown/Boot).
class PersistRedisTest : public netharness::TwoHostTest {
 protected:
  PersistRedisTest()
      : disk_(&b_.mem, /*sectors=*/8192),
        api_(&clock_, &vfs_, b_.stack.get(), posix::DispatchMode::kDirectCall) {
    fs_ = std::make_unique<vfscore::BlockFs>(&disk_, &b_.mem);
    EXPECT_TRUE(ukarch::Ok(fs_->EnsureFormatted()));
    EXPECT_TRUE(ukarch::Ok(vfs_.Mount("/persist", fs_.get())));
    a_.netif->AddArpEntry(netharness::MakeIp(10, 0, 0, 2), b_.nic->mac());
    b_.netif->AddArpEntry(netharness::MakeIp(10, 0, 0, 1), a_.nic->mac());
  }

  void Pump(apps::RedisServer& server, int rounds = 300) {
    for (int i = 0; i < rounds; ++i) {
      a_.stack->Poll();
      b_.stack->Poll();
      server.PumpOnce();
    }
  }

  // Sends |cmds| and pumps until the reply stream stops growing.
  std::string Exchange(std::shared_ptr<uknet::TcpSocket>& sock,
                       apps::RedisServer& server, const std::string& cmds) {
    sock->Send(std::span(reinterpret_cast<const std::uint8_t*>(cmds.data()),
                         cmds.size()));
    std::string reply;
    for (int i = 0; i < 600; ++i) {
      a_.stack->Poll();
      b_.stack->Poll();
      server.PumpOnce();
      std::uint8_t buf[1024];
      std::int64_t n;
      while ((n = sock->Recv(buf)) > 0) {
        reply.append(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n));
      }
    }
    return reply;
  }

  ukblockdev::RamDisk disk_;
  vfscore::Vfs vfs_;
  posix::PosixApi api_;
  std::unique_ptr<vfscore::BlockFs> fs_;
};

TEST_F(PersistRedisTest, SaveBgsaveWaitaofAndRecoveryIntoASecondServer) {
  Persist::Config pcfg;
  pcfg.dir = "/persist";
  pcfg.snapshot_chunk_bytes = 128;  // BGSAVE must span several turns
  auto persist = std::make_unique<Persist>(&vfs_, pcfg);
  auto server = std::make_unique<apps::RedisServer>(&api_, b_.alloc.get(), 6379);
  ASSERT_TRUE(server->Start());
  server->AttachPersist(persist.get());
  Persist::RecoverStats boot = server->RecoverFromPersist();
  EXPECT_FALSE(boot.snapshot_loaded);

  auto sock = a_.stack->TcpConnect(netharness::MakeIp(10, 0, 0, 2), 6379);
  Pump(*server);
  ASSERT_TRUE(sock->connected());

  using apps::RespCommand;
  EXPECT_EQ(Exchange(sock, *server,
                     RespCommand({"SET", "a", "1"}) + RespCommand({"SET", "b", "2"})),
            "+OK\r\n+OK\r\n");
  // SAVE: synchronous snapshot, acknowledged only after the CRC commit.
  EXPECT_EQ(Exchange(sock, *server, RespCommand({"SAVE"})), "+OK\r\n");
  EXPECT_EQ(persist->stats().snapshots_completed, 1u);

  EXPECT_EQ(Exchange(sock, *server, RespCommand({"SET", "c", "3"})), "+OK\r\n");
  // BGSAVE: replies immediately, then the save advances one budgeted chunk
  // per event-loop turn until done.
  EXPECT_EQ(Exchange(sock, *server, RespCommand({"BGSAVE"})),
            "+Background saving started\r\n");
  for (int i = 0; i < 2000 && persist->save_active(); ++i) {
    server->PumpOnce();
  }
  ASSERT_FALSE(persist->save_active());
  EXPECT_EQ(persist->stats().snapshots_completed, 2u);
  // A second BGSAVE while one runs is refused — prove the error path exists
  // by racing one against itself.
  ASSERT_TRUE(persist->StartBackgroundSave());
  EXPECT_EQ(Exchange(sock, *server, RespCommand({"BGSAVE"})),
            "-ERR background save already in progress\r\n");
  for (int i = 0; i < 2000 && persist->save_active(); ++i) {
    server->PumpOnce();
  }

  // Tail after the snapshots, then the WAIT-style barrier.
  EXPECT_EQ(Exchange(sock, *server,
                     RespCommand({"SET", "d", "4"}) + RespCommand({"DEL", "a"})),
            "+OK\r\n:1\r\n");
  const std::uint64_t flushes_before = disk_.flushes();
  EXPECT_EQ(Exchange(sock, *server, RespCommand({"WAITAOF"})), ":1\r\n");
  EXPECT_GT(disk_.flushes(), flushes_before);

  // "Reboot": tear down the server and its persist (fleet order), then boot
  // a fresh pair over the same directory.
  server.reset();
  persist.reset();
  auto persist2 = std::make_unique<Persist>(&vfs_, pcfg);
  auto server2 = std::make_unique<apps::RedisServer>(&api_, b_.alloc.get(), 6380);
  ASSERT_TRUE(server2->Start());
  server2->AttachPersist(persist2.get());
  Persist::RecoverStats rs = server2->RecoverFromPersist();
  EXPECT_TRUE(rs.snapshot_loaded);
  EXPECT_GE(rs.aof_commands, 2u);  // SET d + DEL a ride the tail
  auto& store = server2->store();
  EXPECT_FALSE(store.Get("a").has_value());
  EXPECT_EQ(store.Get("b"), "2");
  EXPECT_EQ(store.Get("c"), "3");
  EXPECT_EQ(store.Get("d"), "4");
}

TEST_F(PersistRedisTest, GetSetHotPathStaysZeroAllocWithAofOn) {
  Persist::Config pcfg;
  pcfg.dir = "/persist";
  pcfg.fsync = Persist::FsyncPolicy::kEveryTurn;
  Persist persist(&vfs_, pcfg);
  apps::RedisServer server(&api_, b_.alloc.get(), 6379);
  ASSERT_TRUE(server.Start());
  server.AttachPersist(&persist);
  server.RecoverFromPersist();

  auto sock = a_.stack->TcpConnect(netharness::MakeIp(10, 0, 0, 2), 6379);
  Pump(server);
  ASSERT_TRUE(sock->connected());

  const std::string value(64, 'v');
  std::string sets;
  std::string gets;
  for (int i = 0; i < 16; ++i) {
    sets += apps::RespCommand({"SET", "hotkey", value});
    gets += apps::RespCommand({"GET", "hotkey"});
  }
  // Warmup: connection buffers, parser scratch, the persist turn buffer and
  // the AOF segment file all reach their high-water marks.
  for (int round = 0; round < 4; ++round) {
    Exchange(sock, server, sets);
    Exchange(sock, server, gets);
  }

  netharness::ZeroAllocGuard guard({}, b_.alloc.get());
  std::string reply = Exchange(sock, server, gets);
  EXPECT_EQ(apps::ConsumeReplies(&reply), 16u);
  // GET with the AOF enabled allocates nothing: views over the parser
  // buffer, reply encoded in place, no log record for a read.
  guard.ExpectHeapSteady("redis GET hot path with AOF everyturn", 0);

  guard.Rebase();
  reply = Exchange(sock, server, sets);
  EXPECT_EQ(apps::ConsumeReplies(&reply), 16u);
  // SET overwrites one slot per command: the value store mallocs and frees
  // in balance (zero byte drift), and the AOF append itself adds nothing.
  EXPECT_EQ(guard.heap_bytes(), 0);
  EXPECT_LE(guard.heap_mallocs(), 16u);
  EXPECT_GE(persist.stats().aof_appends, 16u * 5);  // warmup + measured phase
}

// ---- kvstore end-to-end -----------------------------------------------------------

// The sharded specialized server: two RSS queues, one persist shard per
// queue, full restart (NIC, filesystem object and server rebuilt; only the
// disk backing survives) with per-shard replay.
TEST(KvPersistTest, TwoQueueNetdevServerSurvivesRestart) {
  ukplat::Clock clock;
  ukplat::MemRegion mem(48 << 20);
  std::uint64_t heap_gpa = mem.Carve(24 << 20, 4096);
  auto alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                        mem.At(heap_gpa, 24 << 20), 24 << 20);
  ukplat::Wire wire(&clock);
  uknetdev::VirtioNet::Config nic_cfg;
  nic_cfg.backend = uknetdev::VirtioBackend::kVhostUser;
  nic_cfg.wire_side = 0;
  auto nic = std::make_unique<uknetdev::VirtioNet>(&mem, &clock, &wire, nic_cfg);

  ukblockdev::RamDisk disk(&mem, /*sectors=*/8192);
  vfscore::Vfs vfs;
  auto fs = std::make_unique<vfscore::BlockFs>(&disk, &mem);
  ASSERT_TRUE(ukarch::Ok(fs->EnsureFormatted()));
  ASSERT_TRUE(ukarch::Ok(vfs.Mount("/persist", fs.get())));

  Persist::Config pcfg;
  pcfg.dir = "/persist";
  pcfg.shards = 2;  // one persist shard per queue
  auto persist = std::make_unique<Persist>(&vfs, pcfg);
  auto server = std::make_unique<apps::KvServer>(
      nic.get(), &mem, alloc.get(), uknet::MakeIp(10, 0, 0, 1), 7777,
      apps::KvMode::kUkNetdev, /*queues=*/2);
  ASSERT_TRUE(server->Start());
  ASSERT_EQ(server->queue_count(), 2);
  server->AttachPersist(persist.get());
  Persist::RecoverStats boot = server->RecoverFromPersist();
  EXPECT_FALSE(boot.snapshot_loaded);
  EXPECT_EQ(boot.aof_commands, 0u);

  env::SimHost client(&clock, &wire, 1, uknet::MakeIp(10, 0, 0, 2),
                      ukalloc::Backend::kTlsf,
                      uknetdev::VirtioBackend::kVhostUser);
  client.netif->AddArpEntry(uknet::MakeIp(10, 0, 0, 1), nic->mac());

  // One client flow per server queue (shared symmetric flow hash), each
  // writing a key its own queue's shard owns.
  std::shared_ptr<uknet::UdpSocket> flow[2];
  while (flow[0] == nullptr || flow[1] == nullptr) {
    auto c = client.stack->UdpOpen();
    std::uint16_t q = static_cast<std::uint16_t>(
        ukarch::FlowHash4(uknet::MakeIp(10, 0, 0, 2), c->local_port(),
                          uknet::MakeIp(10, 0, 0, 1), 7777) %
        2);
    if (flow[q] == nullptr) {
      flow[q] = std::move(c);
    }
  }
  auto key_for = [](std::uint16_t q) {
    std::uint16_t k = 0;
    while (apps::KvServer::ShardForKey(k, 2) != q) {
      ++k;
    }
    return k;
  };
  for (std::uint16_t q = 0; q < 2; ++q) {
    flow[q]->SendTo(uknet::MakeIp(10, 0, 0, 1), 7777,
                    apps::EncodeKvRequest(
                        {true, key_for(q), q == 0 ? "zero" : "one"}));
  }
  for (int i = 0; i < 200; ++i) {
    client.stack->Poll();
    server->PumpQueue(0);  // each queue pump flushes its own persist shard
    server->PumpQueue(1);
  }
  EXPECT_EQ(server->requests(), 2u);
  EXPECT_GE(persist->stats().aof_writes, 2u);
  // Drain the SET acks so post-restart reads see only the GET replies.
  for (std::uint16_t q = 0; q < 2; ++q) {
    auto ack = flow[q]->RecvFrom();
    ASSERT_TRUE(ack.has_value());
    EXPECT_EQ(ack->payload[0], 'K');
  }

  // Restart in fleet teardown/bring-up order: only |disk| carries state
  // across; NIC, filesystem object, persist and server are all rebuilt.
  server.reset();
  persist.reset();
  vfs.Unmount("/persist");
  fs.reset();
  nic.reset();
  wire.ResetPort(0);
  nic = std::make_unique<uknetdev::VirtioNet>(&mem, &clock, &wire, nic_cfg);
  fs = std::make_unique<vfscore::BlockFs>(&disk, &mem);
  ASSERT_TRUE(ukarch::Ok(fs->EnsureFormatted()));  // finds, does not reformat
  ASSERT_TRUE(ukarch::Ok(vfs.Mount("/persist", fs.get())));
  persist = std::make_unique<Persist>(&vfs, pcfg);
  server = std::make_unique<apps::KvServer>(
      nic.get(), &mem, alloc.get(), uknet::MakeIp(10, 0, 0, 1), 7777,
      apps::KvMode::kUkNetdev, /*queues=*/2);
  ASSERT_TRUE(server->Start());
  server->AttachPersist(persist.get());
  Persist::RecoverStats rs = server->RecoverFromPersist();
  EXPECT_EQ(rs.aof_commands, 2u);
  EXPECT_EQ(rs.aof_segments, 2u);  // one segment file per shard
  EXPECT_EQ(server->shard_size(0), 1u);
  EXPECT_EQ(server->shard_size(1), 1u);

  // The reborn server answers GETs for pre-restart data over the network.
  client.netif->AddArpEntry(uknet::MakeIp(10, 0, 0, 1), nic->mac());
  for (std::uint16_t q = 0; q < 2; ++q) {
    flow[q]->SendTo(uknet::MakeIp(10, 0, 0, 1), 7777,
                    apps::EncodeKvRequest({false, key_for(q), ""}));
  }
  for (int i = 0; i < 200; ++i) {
    client.stack->Poll();
    server->PumpQueue(0);
    server->PumpQueue(1);
  }
  auto r0 = flow[0]->RecvFrom();
  auto r1 = flow[1]->RecvFrom();
  ASSERT_TRUE(r0 && r1);
  EXPECT_EQ(std::string(r0->payload.begin(), r0->payload.end()), "zero");
  EXPECT_EQ(std::string(r1->payload.begin(), r1->payload.end()), "one");
}

}  // namespace
