// Tests for the platform substrate: clock ledger, guest memory, virtqueue
// ring semantics, wire fabric.
#include <gtest/gtest.h>

#include <cstring>

#include "ukplat/clock.h"
#include "ukplat/memregion.h"
#include "ukplat/virtqueue.h"
#include "ukplat/vmm.h"
#include "ukplat/wire.h"

namespace {

using namespace ukplat;

TEST(Clock, ChargeAccumulates) {
  Clock c;
  c.Charge(100);
  c.Charge(44);
  EXPECT_EQ(c.cycles(), 144u);
  EXPECT_NEAR(c.nanoseconds(), 40.0, 0.01);  // 144 cycles at 3.6 GHz
}

TEST(Clock, CopyCostScalesWithBytes) {
  Clock c;
  c.ChargeCopy(1600);
  EXPECT_EQ(c.cycles(), 100u);  // 0.0625 cycles/byte
}

TEST(Clock, SpanMeasuresDelta) {
  Clock c;
  c.Charge(50);
  ClockSpan span(c);
  c.Charge(25);
  EXPECT_EQ(span.ElapsedCycles(), 25u);
}

TEST(CostModel, Table1ConstantsPreserved) {
  CostModel m;
  // These are the paper's Table 1 numbers; the syscall-cost bench depends on
  // them, so changing them must be a conscious decision.
  EXPECT_EQ(m.syscall_trap_mitigated, 222u);
  EXPECT_EQ(m.syscall_trap_plain, 154u);
  EXPECT_EQ(m.binary_compat_dispatch, 84u);
  EXPECT_EQ(m.function_call, 4u);
}

TEST(MemRegion, BoundsChecked) {
  MemRegion mem(4096);
  EXPECT_NE(mem.At(0, 4096), nullptr);
  EXPECT_EQ(mem.At(0, 4097), nullptr);
  EXPECT_EQ(mem.At(4096, 1), nullptr);
  EXPECT_NE(mem.At(4095, 1), nullptr);
}

TEST(MemRegion, ReadWriteRoundTrip) {
  MemRegion mem(256);
  mem.Write<std::uint32_t>(16, 0xdeadbeef);
  EXPECT_EQ(mem.Read<std::uint32_t>(16), 0xdeadbeefu);
  EXPECT_EQ(mem.fault_count(), 0u);
}

TEST(MemRegion, OutOfBoundsCountsFaults) {
  MemRegion mem(16);
  mem.Write<std::uint64_t>(12, 1);  // spans past the end
  EXPECT_EQ(mem.Read<std::uint64_t>(12), 0u);
  EXPECT_EQ(mem.fault_count(), 2u);
}

TEST(MemRegion, CarveAlignsAndExhausts) {
  MemRegion mem(1024);
  std::uint64_t a = mem.Carve(100, 64);
  std::uint64_t b = mem.Carve(100, 64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_EQ(mem.Carve(10'000, 64), MemRegion::kBadGpa);
}

class VirtqueueTest : public ::testing::Test {
 protected:
  VirtqueueTest() : mem_(1 << 20) {
    std::uint64_t ring_gpa = mem_.Carve(Virtqueue::FootprintBytes(kQSize), 16);
    vq_ = std::make_unique<Virtqueue>(&mem_, ring_gpa, kQSize);
    data_gpa_ = mem_.Carve(65536, 16);
  }

  static constexpr std::uint16_t kQSize = 8;
  MemRegion mem_;
  std::unique_ptr<Virtqueue> vq_;
  std::uint64_t data_gpa_ = 0;
};

TEST_F(VirtqueueTest, EnqueuePopPushComplete) {
  const char msg[] = "hello virtio";
  mem_.CopyIn(data_gpa_, std::as_bytes(std::span(msg)));
  int cookie = 7;
  Virtqueue::Segment seg{data_gpa_, sizeof(msg), false};
  ASSERT_TRUE(vq_->Enqueue(std::span(&seg, 1), &cookie));
  EXPECT_TRUE(vq_->NeedsKick());
  vq_->MarkKicked();
  EXPECT_FALSE(vq_->NeedsKick());

  auto chain = vq_->DevicePop();
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->segments.size(), 1u);
  EXPECT_EQ(chain->segments[0].gpa, data_gpa_);
  EXPECT_EQ(chain->segments[0].len, sizeof(msg));
  char readback[sizeof(msg)];
  mem_.CopyOut(chain->segments[0].gpa, std::as_writable_bytes(std::span(readback)));
  EXPECT_STREQ(readback, msg);

  vq_->DevicePush(chain->head, 0);
  auto done = vq_->DequeueCompletion();
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->cookie, &cookie);
  EXPECT_EQ(vq_->NumFree(), kQSize);
}

TEST_F(VirtqueueTest, ChainedSegments) {
  Virtqueue::Segment segs[3] = {
      {data_gpa_, 100, false},
      {data_gpa_ + 128, 200, false},
      {data_gpa_ + 512, 300, true},
  };
  ASSERT_TRUE(vq_->Enqueue(std::span(segs), nullptr));
  EXPECT_EQ(vq_->NumFree(), kQSize - 3);

  auto chain = vq_->DevicePop();
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->segments.size(), 3u);
  EXPECT_FALSE(chain->segments[0].device_writable);
  EXPECT_TRUE(chain->segments[2].device_writable);
  EXPECT_EQ(chain->segments[1].len, 200u);

  vq_->DevicePush(chain->head, 300);
  auto done = vq_->DequeueCompletion();
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->written, 300u);
  EXPECT_EQ(vq_->NumFree(), kQSize);
}

TEST_F(VirtqueueTest, FillsAndRefuses) {
  Virtqueue::Segment seg{data_gpa_, 16, false};
  for (int i = 0; i < kQSize; ++i) {
    ASSERT_TRUE(vq_->Enqueue(std::span(&seg, 1), nullptr));
  }
  EXPECT_EQ(vq_->NumFree(), 0);
  EXPECT_FALSE(vq_->Enqueue(std::span(&seg, 1), nullptr));
}

TEST_F(VirtqueueTest, RingWrapsCleanly) {
  // Cycle 5x the queue size through the ring to exercise index wrap-around.
  Virtqueue::Segment seg{data_gpa_, 64, false};
  for (int round = 0; round < 5 * kQSize; ++round) {
    ASSERT_TRUE(vq_->Enqueue(std::span(&seg, 1), reinterpret_cast<void*>(
                                                     static_cast<std::uintptr_t>(round + 1))));
    auto chain = vq_->DevicePop();
    ASSERT_TRUE(chain.has_value());
    vq_->DevicePush(chain->head, 0);
    auto done = vq_->DequeueCompletion();
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(done->cookie),
              static_cast<std::uintptr_t>(round + 1));
  }
  EXPECT_EQ(vq_->bad_chains(), 0u);
  EXPECT_EQ(mem_.fault_count(), 0u);
}

TEST_F(VirtqueueTest, DeviceSeesWorkOnlyAfterEnqueue) {
  EXPECT_FALSE(vq_->DeviceHasWork());
  EXPECT_FALSE(vq_->DevicePop().has_value());
  Virtqueue::Segment seg{data_gpa_, 16, false};
  ASSERT_TRUE(vq_->Enqueue(std::span(&seg, 1), nullptr));
  EXPECT_TRUE(vq_->DeviceHasWork());
}

TEST_F(VirtqueueTest, OutOfOrderDeviceCompletion) {
  Virtqueue::Segment seg{data_gpa_, 16, false};
  int c1 = 1, c2 = 2;
  ASSERT_TRUE(vq_->Enqueue(std::span(&seg, 1), &c1));
  ASSERT_TRUE(vq_->Enqueue(std::span(&seg, 1), &c2));
  auto first = vq_->DevicePop();
  auto second = vq_->DevicePop();
  ASSERT_TRUE(first && second);
  // Device completes the second chain first (allowed by the spec).
  vq_->DevicePush(second->head, 0);
  vq_->DevicePush(first->head, 0);
  auto d1 = vq_->DequeueCompletion();
  auto d2 = vq_->DequeueCompletion();
  ASSERT_TRUE(d1 && d2);
  EXPECT_EQ(d1->cookie, &c2);
  EXPECT_EQ(d2->cookie, &c1);
}

TEST(WireTest, DeliversInOrder) {
  Clock clock;
  Wire wire(&clock);
  ASSERT_TRUE(wire.Send(0, {1, 2, 3}));
  ASSERT_TRUE(wire.Send(0, {4, 5}));
  auto f1 = wire.Receive(1);
  auto f2 = wire.Receive(1);
  ASSERT_TRUE(f1 && f2);
  EXPECT_EQ(f1->size(), 3u);
  EXPECT_EQ(f2->size(), 2u);
  EXPECT_FALSE(wire.Receive(1).has_value());
}

TEST(WireTest, DirectionsIndependent) {
  Clock clock;
  Wire wire(&clock);
  ASSERT_TRUE(wire.Send(0, {1}));
  EXPECT_FALSE(wire.Receive(0).has_value());  // side 0 reads B->A traffic
  EXPECT_TRUE(wire.Receive(1).has_value());
}

TEST(WireTest, EnforcesMtuAndQueueDepth) {
  Clock clock;
  Wire::Config cfg;
  cfg.mtu = 100;
  cfg.queue_depth = 2;
  Wire wire(&clock, cfg);
  EXPECT_FALSE(wire.Send(0, std::vector<std::uint8_t>(200)));
  EXPECT_TRUE(wire.Send(0, std::vector<std::uint8_t>(50)));
  EXPECT_TRUE(wire.Send(0, std::vector<std::uint8_t>(50)));
  EXPECT_FALSE(wire.Send(0, std::vector<std::uint8_t>(50)));  // queue full
  EXPECT_EQ(wire.frames_dropped(), 2u);
}

TEST(WireTest, ChargesSerializationDelay) {
  Clock clock;
  Wire wire(&clock);
  wire.Send(0, std::vector<std::uint8_t>(1250));  // 1250B at 10G = 1000ns
  EXPECT_NEAR(clock.nanoseconds(), 1000.0, 5.0);
}

TEST(WireTest, DeterministicDropRate) {
  Clock clock;
  Wire::Config cfg;
  cfg.drop_rate = 0.25;  // every 4th frame
  Wire wire(&clock, cfg);
  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    if (wire.Send(0, {0})) {
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 75);
}

TEST(VmmModels, OrderingMatchesFig10) {
  // Paper Fig 10: QEMU slowest, microVM middle, Solo5/Firecracker ~3ms.
  EXPECT_GT(VmmModel::Qemu().LaunchUs(0), VmmModel::QemuMicroVm().LaunchUs(0));
  EXPECT_GT(VmmModel::QemuMicroVm().LaunchUs(0), VmmModel::Solo5().LaunchUs(0));
  EXPECT_LT(VmmModel::Firecracker().LaunchUs(0), 4000.0);
  // Adding a NIC costs more on QEMU (PCI) than on Firecracker (MMIO).
  double qemu_nic = VmmModel::Qemu().LaunchUs(1) - VmmModel::Qemu().LaunchUs(0);
  double fc_nic = VmmModel::Firecracker().LaunchUs(1) - VmmModel::Firecracker().LaunchUs(0);
  EXPECT_GT(qemu_nic, fc_nic);
}

}  // namespace
