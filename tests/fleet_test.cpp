// Fleet scenario tests: the L4 balancer fronting Instance-booted redis
// backends on one Wire switch. Covers consistent steering under connection
// churn, probe traffic staying out of backend request stats, kill/respawn
// cold-start under load with zero resets on survivors' established
// connections, bounded TIME_WAIT/fd state across thousands of short-lived
// connections, and slow-client / partial-write abuse of the stream scaffold.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "apps/l4_balancer.h"
#include "apps/redis.h"
#include "apps/resp.h"
#include "env/fleet.h"
#include "env/testbed.h"
#include "net_harness.h"

namespace {

using apps::L4Balancer;
using apps::RespCommand;

constexpr std::string_view kPing = "*1\r\n$4\r\nPING\r\n";
constexpr std::string_view kPong = "+PONG\r\n";

std::uint64_t SumCounts(
    const std::unordered_map<std::string, std::uint64_t>& m) {
  std::uint64_t total = 0;
  for (const auto& [k, v] : m) {
    total += v;
  }
  return total;
}

// A long-lived client connection through the VIP: opened once, then pinged
// repeatedly across fleet events. `failed()` flipping true on one of these is
// exactly the "survivor reset" the scenarios must rule out.
struct LongLived {
  std::shared_ptr<uknet::TcpSocket> sock;
  std::string rx;
  int slot = -1;  // steering slot predicted by the balancer

  bool SendPing() {
    const auto* p = reinterpret_cast<const std::uint8_t*>(kPing.data());
    return sock->Send(std::span(p, kPing.size())) ==
           static_cast<std::int64_t>(kPing.size());
  }
  void Drain() {
    std::uint8_t buf[256];
    for (;;) {
      const std::int64_t n = sock->Recv(buf);
      if (n <= 0) {
        break;
      }
      rx.append(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n));
    }
  }
  bool TakePong() {
    Drain();
    if (rx.rfind(kPong, 0) != 0) {
      return false;
    }
    rx.erase(0, kPong.size());
    return true;
  }
};

class FleetTest : public ::testing::Test {
 protected:
  void Build(env::FleetTestBed::Config cfg) {
    fleet_ = std::make_unique<env::FleetTestBed>(cfg);
  }

  // Opens |n| long-lived connections and waits until each one answered a
  // PING — proof the full client->balancer->backend splice is established.
  std::vector<LongLived> OpenLongLived(int n) {
    std::vector<LongLived> conns(static_cast<std::size_t>(n));
    for (LongLived& c : conns) {
      c.sock = fleet_->client_stack()->TcpConnect(
          env::FleetTestBed::kBalancerIp, fleet_->config().vip_port);
    }
    EXPECT_TRUE(fleet_->PumpUntil([&] {
      return std::all_of(conns.begin(), conns.end(),
                         [](const LongLived& c) { return c.sock->connected(); });
    }));
    for (LongLived& c : conns) {
      c.slot = fleet_->balancer().SteerSlot(env::FleetTestBed::kClientIp,
                                            c.sock->local_port());
      EXPECT_TRUE(c.SendPing());
    }
    EXPECT_TRUE(PumpPongs(conns));
    return conns;
  }

  // Waits for every connection in |conns| to deliver one +PONG.
  bool PumpPongs(std::vector<LongLived>& conns) {
    std::vector<bool> got(conns.size(), false);
    return fleet_->PumpUntil([&] {
      bool all = true;
      for (std::size_t i = 0; i < conns.size(); ++i) {
        if (!got[i]) {
          got[i] = conns[i].TakePong();
        }
        all = all && got[i];
      }
      return all;
    });
  }

  std::unique_ptr<env::FleetTestBed> fleet_;
};

// ---- churn steering + probe stat exclusion ---------------------------------

TEST_F(FleetTest, ChurnSteersAcrossBackendsAndProbesStayOutOfStats) {
  env::FleetTestBed::Config cfg;
  cfg.backends = 2;
  Build(cfg);

  env::FleetChurnClient churn(fleet_->client_stack(),
                              env::FleetTestBed::kBalancerIp,
                              fleet_->config().vip_port, 8);
  ASSERT_TRUE(fleet_->PumpUntil([&] {
    churn.Pump();
    return churn.completed() >= 400;
  }));
  churn.set_running(false);
  ASSERT_TRUE(fleet_->PumpUntil([&] {
    churn.Pump();
    return churn.idle();
  }));

  // Healthy fleet: every connection completed, none aborted, and the flow
  // hash spread the churn over both backends.
  EXPECT_EQ(churn.aborted(), 0u);
  EXPECT_EQ(SumCounts(churn.by_backend()), churn.completed());
  ASSERT_EQ(churn.by_backend().size(), 2u);
  EXPECT_GT(churn.by_backend().at("b0"), 0u);
  EXPECT_GT(churn.by_backend().at("b1"), 0u);
  EXPECT_GE(fleet_->balancer().stats().flows_opened, churn.completed());
  EXPECT_EQ(fleet_->balancer().stats().flows_failed, 0u);

  // Health checks ran the whole time...
  EXPECT_GT(fleet_->balancer().stats().probes_sent, 0u);
  EXPECT_GT(fleet_->balancer().stats().probes_ok, 0u);
  EXPECT_EQ(fleet_->balancer().stats().probes_failed, 0u);

  // ...but never leaked into the backends' request stats: each backend's
  // command count is exactly its share of real GETs, with probe PINGs
  // tallied separately off probe-marked connections.
  for (int i = 0; i < 2; ++i) {
    const auto& b = fleet_->backend(i);
    EXPECT_EQ(b.server->commands_processed(), churn.by_backend().at(b.id()))
        << b.id();
    EXPECT_GT(b.server->probe_commands(), 0u) << b.id();
    EXPECT_GT(b.server->stream().probe_conns(), 0u) << b.id();
  }
}

TEST_F(FleetTest, SteeringIsConsistentPerFlowTuple) {
  env::FleetTestBed::Config cfg;
  cfg.backends = 4;
  Build(cfg);

  // The steering decision is a pure function of the client tuple: the same
  // port always lands on the same slot, and with all slots up every slot is
  // reachable from some tuple.
  std::vector<int> hits(4, 0);
  for (std::uint16_t port = 40000; port < 40256; ++port) {
    const int s1 =
        fleet_->balancer().SteerSlot(env::FleetTestBed::kClientIp, port);
    const int s2 =
        fleet_->balancer().SteerSlot(env::FleetTestBed::kClientIp, port);
    ASSERT_EQ(s1, s2);
    ASSERT_GE(s1, 0);
    ASSERT_LT(s1, 4);
    ++hits[static_cast<std::size_t>(s1)];
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(hits[static_cast<std::size_t>(s)], 0) << "slot " << s;
  }
}

// ---- kill / respawn under load ---------------------------------------------

TEST_F(FleetTest, KillRespawnColdStartUnderLoadLeavesSurvivorsUntouched) {
  env::FleetTestBed::Config cfg;
  cfg.backends = 4;
  Build(cfg);

  std::vector<LongLived> conns = OpenLongLived(8);
  const int victim = conns[0].slot;
  ASSERT_GE(victim, 0);
  std::vector<LongLived*> survivors;
  std::vector<LongLived*> victims;
  for (LongLived& c : conns) {
    (c.slot == victim ? victims : survivors).push_back(&c);
  }
  ASSERT_FALSE(survivors.empty());

  env::FleetChurnClient churn(fleet_->client_stack(),
                              env::FleetTestBed::kBalancerIp,
                              fleet_->config().vip_port, 8);
  ASSERT_TRUE(fleet_->PumpUntil([&] {
    churn.Pump();
    return churn.completed() >= 100;
  }));

  // Hard-kill the victim mid-traffic: its NIC, stack and server are gone and
  // its wire port forgets the MAC. Nothing answers — the balancer must
  // notice by probe timeout.
  fleet_->KillBackend(victim);
  ASSERT_TRUE(fleet_->PumpUntil([&] {
    churn.Pump();
    return fleet_->balancer().state(victim) == L4Balancer::BackendState::kDown;
  }));
  EXPECT_GE(fleet_->balancer().stats().backend_down_events, 1u);
  EXPECT_GE(fleet_->balancer().stats().probes_failed, 1u);

  // The dead slot's flows were torn down; the victim's long-lived conns see
  // an orderly close, never a half-dead hang.
  ASSERT_TRUE(fleet_->PumpUntil([&] {
    churn.Pump();
    return std::all_of(victims.begin(), victims.end(), [](LongLived* c) {
      c->Drain();
      return c->sock->peer_closed() || c->sock->failed();
    });
  }));
  for (LongLived* c : victims) {
    c->sock->Close();
  }

  // Churn keeps completing against the survivors while the slot is down.
  const std::uint64_t at_down = churn.completed();
  ASSERT_TRUE(fleet_->PumpUntil([&] {
    churn.Pump();
    return churn.completed() >= at_down + 100;
  }));

  // Cold-start the replacement under load: a full inittab replay against the
  // same guest RAM, re-admitted by the next successful probe.
  const ukboot::BootReport report = fleet_->BootBackend(victim);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_FALSE(report.stages.empty());
  EXPECT_GT(report.guest_us, 0.0);
  ASSERT_TRUE(fleet_->PumpUntil([&] {
    churn.Pump();
    return fleet_->balancer().state(victim) == L4Balancer::BackendState::kUp;
  }));

  // The respawned incarnation serves: churn replies start carrying its
  // "-r1" identity.
  const std::string reborn = fleet_->backend(victim).id();
  ASSERT_EQ(reborn, "b" + std::to_string(victim) + "-r1");
  ASSERT_TRUE(fleet_->PumpUntil([&] {
    churn.Pump();
    return churn.by_backend().count(reborn) != 0;
  }));

  // The acceptance bar: across kill, detection, cold boot and re-admission,
  // no surviving backend's established connection was ever reset — they all
  // still answer PINGs on the same socket.
  for (LongLived* c : survivors) {
    EXPECT_FALSE(c->sock->failed());
    EXPECT_FALSE(c->sock->peer_closed());
    EXPECT_TRUE(c->SendPing());
  }
  std::vector<LongLived> alive;
  for (LongLived* c : survivors) {
    alive.push_back(*c);
  }
  EXPECT_TRUE(PumpPongs(alive));
  for (LongLived& c : alive) {
    EXPECT_FALSE(c.sock->failed());
  }

  // Aborted flows are bounded by the kill window (in-flight conns on the
  // dead slot), not proportional to total churn.
  EXPECT_LE(churn.aborted(), 64u);
  EXPECT_GT(churn.completed(), at_down + 100);
}

TEST_F(FleetTest, DrainStopsNewFlowsButKeepsEstablishedOnes) {
  env::FleetTestBed::Config cfg;
  cfg.backends = 2;
  Build(cfg);

  std::vector<LongLived> conns = OpenLongLived(4);
  auto drained_it =
      std::find_if(conns.begin(), conns.end(),
                   [](const LongLived& c) { return c.slot == 0; });
  ASSERT_NE(drained_it, conns.end());
  LongLived& pinned = *drained_it;

  fleet_->balancer().SetDrain(0, true);
  EXPECT_EQ(fleet_->balancer().state(0), L4Balancer::BackendState::kDraining);

  // New churn steers only to the healthy slot...
  env::FleetChurnClient churn(fleet_->client_stack(),
                              env::FleetTestBed::kBalancerIp,
                              fleet_->config().vip_port, 4);
  ASSERT_TRUE(fleet_->PumpUntil([&] {
    churn.Pump();
    return churn.completed() >= 60;
  }));
  EXPECT_EQ(churn.by_backend().count("b0"), 0u);
  EXPECT_GT(churn.by_backend().at("b1"), 0u);
  EXPECT_GT(fleet_->balancer().stats().fallback_steers, 0u);

  // ...while the established flow on the draining slot keeps serving.
  EXPECT_TRUE(pinned.SendPing());
  std::vector<LongLived> just_pinned{pinned};
  EXPECT_TRUE(PumpPongs(just_pinned));
  EXPECT_FALSE(just_pinned[0].sock->failed());

  fleet_->balancer().SetDrain(0, false);
  EXPECT_EQ(fleet_->balancer().state(0), L4Balancer::BackendState::kUp);
}

// ---- durable reboot: the persistence tier end-to-end ------------------------

// KillBackend is a HARD kill (server, persist, filesystem object all torn
// down with no goodbye); only the backend's disk survives. The reborn
// incarnation must replay its snapshot + AOF tail at the kLate boot stage
// and serve the pre-kill dataset over the network.
TEST_F(FleetTest, RebornBackendServesItsPreKillDataset) {
  env::FleetTestBed::Config cfg;
  cfg.backends = 2;
  Build(cfg);

  // Speak RESP straight to backend 0 (bypassing the VIP) so the dataset
  // lands deterministically on the instance we are about to kill.
  env::FleetTestBed::BackendHost& b0 = fleet_->backend(0);
  fleet_->client_host().netif->AddArpEntry(b0.ip, b0.nic->mac());
  b0.netif->AddArpEntry(env::FleetTestBed::kClientIp,
                        fleet_->client_host().nic->mac());

  auto exchange = [&](std::shared_ptr<uknet::TcpSocket>& sock,
                      const std::string& cmds, const std::string& expect) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(cmds.data());
    ASSERT_EQ(sock->Send(std::span(p, cmds.size())),
              static_cast<std::int64_t>(cmds.size()));
    std::string rx;
    std::uint8_t buf[512];
    ASSERT_TRUE(fleet_->PumpUntil([&] {
      std::int64_t n;
      while ((n = sock->Recv(buf)) > 0) {
        rx.append(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n));
      }
      return rx.size() >= expect.size();
    }));
    EXPECT_EQ(rx, expect);
  };

  auto sock = fleet_->client_stack()->TcpConnect(b0.ip,
                                                 fleet_->config().backend_port);
  ASSERT_TRUE(fleet_->PumpUntil([&] { return sock->connected(); }));
  // Dataset: three keys, a snapshot, then a tail (one SET + one DEL) the
  // snapshot does not cover, sealed by the WAITAOF barrier.
  exchange(sock,
           RespCommand({"SET", "a", "1"}) + RespCommand({"SET", "b", "2"}) +
               RespCommand({"SET", "c", "3"}),
           "+OK\r\n+OK\r\n+OK\r\n");
  exchange(sock, RespCommand({"SAVE"}), "+OK\r\n");
  exchange(sock, RespCommand({"SET", "d", "4"}) + RespCommand({"DEL", "b"}),
           "+OK\r\n:1\r\n");
  exchange(sock, RespCommand({"WAITAOF"}), ":1\r\n");

  // Kill mid-traffic: churn through the VIP is live when the backend dies.
  env::FleetChurnClient churn(fleet_->client_stack(),
                              env::FleetTestBed::kBalancerIp,
                              fleet_->config().vip_port, 6);
  ASSERT_TRUE(fleet_->PumpUntil([&] {
    churn.Pump();
    return churn.completed() >= 50;
  }));
  fleet_->KillBackend(0);
  ASSERT_TRUE(fleet_->PumpUntil([&] {
    churn.Pump();
    return fleet_->balancer().state(0) == L4Balancer::BackendState::kDown;
  }));

  // Cold boot: the full inittab replays, including the kRootfs blockfs mount
  // (finds the previous incarnation's image) and the kLate recovery.
  const ukboot::BootReport report = fleet_->BootBackend(0);
  ASSERT_TRUE(report.ok) << report.error;
  const apps::Persist::RecoverStats& rs = b0.last_recover;
  EXPECT_TRUE(rs.snapshot_loaded);
  EXPECT_EQ(rs.snapshot_gen, 1u);
  EXPECT_GE(rs.aof_commands, 2u);  // SET d + DEL b ride the tail
  EXPECT_FALSE(rs.aof_tail_truncated);

  // The reborn store: snapshot keys, tail applied on top, fresh identity.
  apps::ValueStore& store = b0.server->store();
  EXPECT_EQ(store.Get("a"), "1");
  EXPECT_FALSE(store.Get("b").has_value());
  EXPECT_EQ(store.Get("c"), "3");
  EXPECT_EQ(store.Get("d"), "4");
  EXPECT_EQ(store.Get("id"), "b0-r1");

  // And it serves that dataset over the network on a fresh connection (the
  // backend's MAC is derived from its wire port, so the client's ARP entry
  // is still right; the reborn netif needs the client's).
  b0.netif->AddArpEntry(env::FleetTestBed::kClientIp,
                        fleet_->client_host().nic->mac());
  auto sock2 = fleet_->client_stack()->TcpConnect(b0.ip,
                                                  fleet_->config().backend_port);
  ASSERT_TRUE(fleet_->PumpUntil([&] { return sock2->connected(); }));
  exchange(sock2, RespCommand({"GET", "a"}) + RespCommand({"GET", "d"}),
           "$1\r\n1\r\n$1\r\n4\r\n");

  // The balancer re-admits it and churn reaches the new incarnation.
  ASSERT_TRUE(fleet_->PumpUntil([&] {
    churn.Pump();
    return fleet_->balancer().state(0) == L4Balancer::BackendState::kUp &&
           churn.by_backend().count("b0-r1") != 0;
  }));

  // The survivor never recovered anything and never saw the dataset.
  EXPECT_FALSE(fleet_->backend(1).last_recover.snapshot_loaded);
  EXPECT_FALSE(fleet_->backend(1).server->store().Get("a").has_value());
}

// ---- churn at scale: bounded tables, no per-connection leak ----------------

TEST_F(FleetTest, ThousandsOfShortLivedConnectionsStayBounded) {
  env::FleetTestBed::Config cfg;
  cfg.backends = 1;
  // One probe round at boot, then silence: the steady-state portion must be
  // pure churn so the leak check sees quiescent snapshots.
  cfg.probe_interval_cycles = 1ull << 62;
  Build(cfg);

  env::FleetChurnClient churn(fleet_->client_stack(),
                              env::FleetTestBed::kBalancerIp,
                              fleet_->config().vip_port, 16);

  // Warm-up: get every pool, table and arena to steady-state size, then
  // drain to a quiescent point (no live churn conns, TIME_WAIT reaped).
  ASSERT_TRUE(fleet_->PumpUntil([&] {
    churn.Pump();
    return churn.completed() >= 300;
  }));
  churn.set_running(false);
  ASSERT_TRUE(fleet_->PumpUntil([&] {
    churn.Pump();
    return churn.idle();
  }));
  for (int i = 0; i < 300; ++i) {
    fleet_->PumpAll();  // let TIME_WAIT poll budgets run out everywhere
  }

  const std::size_t client_base = fleet_->client_stack()->tcp_conn_count();
  const std::size_t lb_base = fleet_->balancer_sim().stack->tcp_conn_count();
  const std::size_t be_base = fleet_->backend(0).stack->tcp_conn_count();
  const std::size_t lb_fds = fleet_->balancer_api().fdtab().open_count();
  const std::size_t be_fds = fleet_->backend(0).api->fdtab().open_count();
  netharness::ZeroAllocGuard lb_guard({}, fleet_->balancer_sim().alloc.get());
  netharness::ZeroAllocGuard be_guard({}, fleet_->backend(0).instance->heap());

  // Steady state: 2000 more short-lived connections through the same
  // backend, with bounds enforced mid-flight.
  churn.set_running(true);
  const std::uint64_t target = churn.completed() + 2000;
  std::uint64_t next_check = churn.completed() + 250;
  ASSERT_TRUE(fleet_->PumpUntil(
      [&] {
        churn.Pump();
        if (churn.completed() >= next_check) {
          next_check += 250;
          // Active conns (<=16 per hop side) + TIME_WAIT backlog bounded by
          // its poll budget — never proportional to total churn.
          EXPECT_LE(fleet_->client_stack()->tcp_conn_count(), 200u);
          EXPECT_LE(fleet_->balancer_sim().stack->tcp_conn_count(), 400u);
          EXPECT_LE(fleet_->backend(0).stack->tcp_conn_count(), 200u);
          EXPECT_LE(fleet_->balancer_api().fdtab().open_count(), lb_fds + 40);
          EXPECT_LE(fleet_->backend(0).api->fdtab().open_count(), be_fds + 40);
        }
        return churn.completed() >= target;
      },
      600000));
  churn.set_running(false);
  ASSERT_TRUE(fleet_->PumpUntil([&] {
    churn.Pump();
    return churn.idle();
  }));
  for (int i = 0; i < 300; ++i) {
    fleet_->PumpAll();
  }

  EXPECT_EQ(churn.aborted(), 0u);

  // Quiescent again: every per-connection object was returned. Conn tables,
  // fd tables and both heaps are exactly back at the warm-up baseline —
  // 2000 connections left no residue.
  EXPECT_EQ(fleet_->client_stack()->tcp_conn_count(), client_base);
  EXPECT_EQ(fleet_->balancer_sim().stack->tcp_conn_count(), lb_base);
  EXPECT_EQ(fleet_->backend(0).stack->tcp_conn_count(), be_base);
  EXPECT_EQ(fleet_->balancer_api().fdtab().open_count(), lb_fds);
  EXPECT_EQ(fleet_->backend(0).api->fdtab().open_count(), be_fds);
  EXPECT_EQ(lb_guard.heap_bytes(), 0) << "balancer heap drifted";
  EXPECT_EQ(be_guard.heap_bytes(), 0) << "backend heap drifted";

  // Fd slots were recycled, not grown: generations prove reuse.
  bool reused = false;
  for (int fd = 0; fd < 32 && !reused; ++fd) {
    reused = fleet_->balancer_api().fdtab().generation(fd) > 4;
  }
  EXPECT_TRUE(reused);
}

// ---- slow-client / partial-write abuse (plain testbed + redis) -------------

class StreamAbuseTest : public ::testing::Test {
 protected:
  StreamAbuseTest()
      : bed_(env::Profile::UnikraftKvm()),
        server_(&bed_.api(), bed_.server().alloc.get(), 6379) {
    EXPECT_TRUE(server_.Start());
  }

  void Pump(int rounds = 300) {
    for (int i = 0; i < rounds; ++i) {
      bed_.Poll();
      server_.PumpOnce();
    }
  }

  std::shared_ptr<uknet::TcpSocket> Connect() {
    auto sock = bed_.client().stack->TcpConnect(env::TestBed::kServerIp, 6379);
    Pump();
    EXPECT_TRUE(sock->connected());
    return sock;
  }

  static void SendAll(uknet::TcpSocket& sock, std::string_view data) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(data.data());
    ASSERT_EQ(sock.Send(std::span(p, data.size())),
              static_cast<std::int64_t>(data.size()));
  }

  env::TestBed bed_;
  apps::RedisServer server_;
};

TEST_F(StreamAbuseTest, OneByteReaderDoesNotStarveOtherConnections) {
  // A 4 KB value makes the slow reader's reply span many send-buffer flushes.
  const std::string big(4096, 'x');
  auto slow = Connect();
  auto fast = Connect();
  SendAll(*slow, RespCommand({"SET", "big", big}));
  Pump();
  SendAll(*slow, RespCommand({"GET", "big"}));
  Pump(20);

  // The abusive peer takes one byte per event-loop turn; the well-behaved
  // peer must keep completing PINGs at full speed in between (epoll rotor
  // fairness — the stalled flush cannot monopolize the loop).
  std::string slow_rx;
  std::string fast_rx;
  int pongs = 0;
  bool fast_waiting = false;
  const std::string expect_reply =
      apps::RespSimpleString("OK");  // from the SET above
  int turns = 0;
  while (pongs < 50 && turns < 30000) {
    ++turns;
    bed_.Poll();
    server_.PumpOnce();
    std::uint8_t one;
    const std::int64_t n = slow->Recv(std::span(&one, 1));
    if (n > 0) {
      slow_rx.push_back(static_cast<char>(one));
    }
    if (!fast_waiting) {
      SendAll(*fast, std::string(kPing));
      fast_waiting = true;
    }
    std::uint8_t buf[128];
    const std::int64_t fn = fast->Recv(buf);
    if (fn > 0) {
      fast_rx.append(reinterpret_cast<char*>(buf),
                     static_cast<std::size_t>(fn));
      while (fast_rx.rfind(kPong, 0) == 0) {
        fast_rx.erase(0, kPong.size());
        ++pongs;
        fast_waiting = false;
      }
    }
  }
  EXPECT_EQ(pongs, 50);
  // The slow reader is still mid-transfer (it only took `turns` bytes of a
  // >4 KB reply) yet its connection is intact and still draining.
  EXPECT_FALSE(slow->failed());
  EXPECT_FALSE(slow_rx.empty());
  EXPECT_LT(slow_rx.size(), expect_reply.size() + 4096 + 32);

  // Let it finish at full speed: the complete OK + $4096 bulk arrives.
  for (int i = 0; i < 20000 && slow_rx.find(big) == std::string::npos; ++i) {
    bed_.Poll();
    server_.PumpOnce();
    std::uint8_t buf[512];
    const std::int64_t n = slow->Recv(buf);
    if (n > 0) {
      slow_rx.append(reinterpret_cast<char*>(buf),
                     static_cast<std::size_t>(n));
    }
  }
  EXPECT_NE(slow_rx.find(expect_reply), std::string::npos);
  EXPECT_NE(slow_rx.find(big), std::string::npos);
  EXPECT_FALSE(slow->failed());
}

TEST_F(StreamAbuseTest, MidRequestStallerDoesNotWedgeTheLoop) {
  auto staller = Connect();
  auto worker = Connect();

  // The staller sends half a RESP command and then goes silent forever. The
  // server must hold the partial parse state and move on.
  const std::string full = RespCommand({"SET", "stalled-key", "never"});
  SendAll(*staller, std::string_view(full).substr(0, full.size() / 2));
  Pump(50);

  const std::uint64_t before = server_.commands_processed();
  std::string rx;
  for (int i = 0; i < 40; ++i) {
    SendAll(*worker, std::string(kPing));
    Pump(30);
    std::uint8_t buf[128];
    std::int64_t n;
    while ((n = worker->Recv(buf)) > 0) {
      rx.append(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n));
    }
  }
  std::size_t pongs = 0;
  for (std::size_t at = 0; (at = rx.find(kPong, at)) != std::string::npos;
       at += kPong.size()) {
    ++pongs;
  }
  EXPECT_EQ(pongs, 40u);
  EXPECT_EQ(server_.commands_processed(), before + 40);

  // The stalled half-command never executed and never will — but the
  // connection is still open (no spurious teardown) and completing it later
  // still works.
  EXPECT_EQ(server_.store().Get("stalled-key"), std::nullopt);
  EXPECT_FALSE(staller->failed());
  EXPECT_FALSE(staller->peer_closed());
  SendAll(*staller, std::string_view(full).substr(full.size() / 2));
  Pump(50);
  auto v = server_.store().Get("stalled-key");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "never");
}

}  // namespace
