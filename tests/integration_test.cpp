// Cross-module integration tests: whole-system scenarios that exercise the
// boot path, filesystems, network stack, POSIX layer and applications
// together — the flows a downstream user of the library would build.
#include <gtest/gtest.h>

#include <cstring>

#include "apps/http.h"
#include "apps/redis.h"
#include "apps/resp.h"
#include "env/testbed.h"
#include "uk9p/ninepfs.h"
#include "ukboot/instance.h"
#include "vfscore/ramfs.h"

namespace {

// ---- boot-to-serving: a full unikernel lifecycle --------------------------------

TEST(Integration, BootedInstanceRunsThreadsOverItsOwnHeap) {
  ukboot::InstanceConfig cfg;
  cfg.memory_bytes = 32 << 20;
  cfg.allocator = ukalloc::Backend::kMimalloc;
  cfg.preemptive = true;
  ukboot::Instance vm(cfg);
  int completed = 0;
  vm.RegisterInit(ukboot::InitStage::kLate, "workers", [&](ukboot::Instance& inst) {
    for (int i = 0; i < 8; ++i) {
      if (inst.scheduler()->CreateThread("w", [&completed, &inst] {
            // Each worker allocates, yields, frees — heap + sched interplay.
            void* p = inst.heap()->Malloc(4096);
            inst.scheduler()->Yield();
            inst.heap()->Free(p);
            ++completed;
          }) == nullptr) {
        return ukarch::Status::kNoMem;
      }
    }
    return inst.scheduler()->Run() == 0 ? ukarch::Status::kOk : ukarch::Status::kBusy;
  });
  ukboot::BootReport report = vm.Boot();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(completed, 8);
  EXPECT_GE(vm.scheduler()->stats().context_switches, 16u);
}

TEST(Integration, BootFailurePropagatesFromDeepInit) {
  ukboot::InstanceConfig cfg;
  cfg.memory_bytes = 2 << 20;  // bootable, but too small for the init below
  ukboot::Instance vm(cfg);
  vm.RegisterInit(ukboot::InitStage::kSys, "hungry", [](ukboot::Instance& inst) {
    return inst.heap()->Malloc(64 << 20) == nullptr ? ukarch::Status::kNoMem
                                                    : ukarch::Status::kOk;
  });
  ukboot::BootReport report = vm.Boot();
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("hungry"), std::string::npos);
}

// ---- HTTP serving out of a 9p-mounted host share ---------------------------------

TEST(Integration, HttpServesContentFrom9pMount) {
  env::TestBed bed(env::Profile::UnikraftKvm());
  // Host share with the web root.
  uk9p::Server host_share;
  std::string page = "<html>served over 9p</html>";
  host_share.root().AddFile("page.html",
                            std::vector<std::uint8_t>(page.begin(), page.end()));
  uk9p::Virtio9pTransport transport(&bed.server().mem, &bed.clock(), &host_share);
  ASSERT_TRUE(transport.ok());
  uk9p::Client client(&transport);
  uk9p::NinePFs ninepfs(&client);
  ASSERT_TRUE(Ok(bed.vfs().Mkdir("/share")));
  ASSERT_TRUE(Ok(bed.vfs().Mount("/share", &ninepfs)));

  apps::HttpServer server(&bed.api(), 80, &bed.vfs());
  ASSERT_TRUE(server.Start());
  auto sock = bed.client().stack->TcpConnect(env::TestBed::kServerIp, 80);
  for (int i = 0; i < 300; ++i) {
    bed.Poll();
    server.PumpOnce();
  }
  ASSERT_TRUE(sock->connected());
  std::string req = "GET /share/page.html HTTP/1.1\r\n\r\n";
  sock->Send(std::span(reinterpret_cast<const std::uint8_t*>(req.data()), req.size()));
  for (int i = 0; i < 400; ++i) {
    bed.Poll();
    server.PumpOnce();
  }
  std::uint8_t buf[1024];
  std::int64_t n = sock->Recv(buf);
  ASSERT_GT(n, 0);
  std::string resp(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n));
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("served over 9p"), std::string::npos);
  // Every file access crossed the virtio-9p transport.
  EXPECT_GT(transport.rpcs(), 2u);
  // Drop the mount before the client/transport (declared after |bed|) go out
  // of scope, or the root node's clunk would reach a dangling client.
  EXPECT_TRUE(Ok(bed.vfs().Unmount("/share")));
}

// ---- redis under a lossy wire ------------------------------------------------------

TEST(Integration, RedisSurvivesPacketLoss) {
  env::TestBed bed(env::Profile::UnikraftKvm());
  // No native drop config on the TestBed wire, so emulate loss by stealing
  // frames mid-flight at deterministic intervals.
  apps::RedisServer server(&bed.api(), bed.server().alloc.get(), 6379);
  ASSERT_TRUE(server.Start());
  auto sock = bed.client().stack->TcpConnect(env::TestBed::kServerIp, 6379);
  bed.client().stack->rto_cycles = 20'000;
  bed.server().stack->rto_cycles = 20'000;
  for (int i = 0; i < 300; ++i) {
    bed.Poll();
    server.PumpOnce();
  }
  ASSERT_TRUE(sock->connected());

  int sent = 0, dropped = 0;
  std::string rx;
  for (int round = 0; round < 8000 && sent < 50; ++round) {
    bed.clock().Charge(5'000);  // let RTOs fire
    if (sock->send_space() > 128 && sent < 50) {
      std::string cmd = apps::RespCommand({"SET", "k" + std::to_string(sent), "v"});
      if (sock->Send(std::span(reinterpret_cast<const std::uint8_t*>(cmd.data()),
                               cmd.size())) == static_cast<std::int64_t>(cmd.size())) {
        ++sent;
      }
    }
    // Steal every 13th frame crossing towards the server.
    if (round % 13 == 0 && bed.wire().Pending(0) > 0) {
      bed.wire().Receive(0);
      ++dropped;
    }
    bed.Poll();
    server.PumpOnce();
    std::uint8_t buf[2048];
    std::int64_t n = sock->Recv(buf);
    if (n > 0) {
      rx.append(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n));
    }
  }
  // Drain the tail.
  for (int round = 0; round < 20000 && server.commands_processed() < 50; ++round) {
    bed.clock().Charge(5'000);
    bed.Poll();
    server.PumpOnce();
  }
  EXPECT_GT(dropped, 0);
  EXPECT_EQ(server.commands_processed(), 50u);  // TCP recovered every command
  EXPECT_GT(sock->tcp_stats().retransmissions, 0u);
}

// ---- environment profiles change cost, not behaviour --------------------------------

TEST(Integration, SameAppSameResultsDifferentCosts) {
  auto run = [](const env::Profile& profile) {
    env::TestBed bed(profile);
    apps::RedisServer server(&bed.api(), bed.server().alloc.get(), 6379);
    server.Start();
    auto sock = bed.client().stack->TcpConnect(env::TestBed::kServerIp, 6379);
    for (int i = 0; i < 300; ++i) {
      bed.Poll();
      server.PumpOnce();
    }
    std::string cmds = apps::RespCommand({"SET", "x", "1"}) +
                       apps::RespCommand({"INCR", "x"}) +
                       apps::RespCommand({"GET", "x"});
    sock->Send(std::span(reinterpret_cast<const std::uint8_t*>(cmds.data()),
                         cmds.size()));
    for (int i = 0; i < 300; ++i) {
      bed.Poll();
      server.PumpOnce();
    }
    std::uint8_t buf[256];
    std::int64_t n = sock->Recv(buf);
    return std::pair<std::string, std::uint64_t>(
        std::string(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n > 0 ? n : 0)),
        bed.clock().cycles());
  };
  auto [uk_reply, uk_cycles] = run(env::Profile::UnikraftKvm());
  auto [lx_reply, lx_cycles] = run(env::Profile::LinuxKvm());
  EXPECT_EQ(uk_reply, "+OK\r\n:2\r\n$1\r\n2\r\n");
  EXPECT_EQ(lx_reply, uk_reply);          // identical semantics...
  EXPECT_LT(uk_cycles, lx_cycles);        // ...cheaper under the unikernel profile
}

// ---- fd table + sockets + files coexist ---------------------------------------------

TEST(Integration, MixedFdWorkload) {
  env::TestBed bed(env::Profile::UnikraftKvm());
  posix::PosixApi& api = bed.api();
  // Files and sockets interleaved in one table.
  int f1 = api.Open("/a", vfscore::kWrite | vfscore::kCreate);
  int s1 = api.Socket(posix::SockType::kDgram);
  int f2 = api.Open("/b", vfscore::kWrite | vfscore::kCreate);
  ASSERT_GT(f1, 2);
  ASSERT_GT(s1, f1);
  ASSERT_GT(f2, s1);
  EXPECT_EQ(api.Bind(s1, 9999), 0);
  const char data[] = "mixed";
  EXPECT_EQ(api.Write(f1, std::as_bytes(std::span(data, 5))), 5);
  EXPECT_EQ(api.Close(s1), 0);
  // Closed socket fd gets reused by the next open.
  int f3 = api.Open("/c", vfscore::kWrite | vfscore::kCreate);
  EXPECT_EQ(f3, s1);
  // Type confusion is rejected: file ops on what is now a file work, socket
  // ops on it fail cleanly.
  EXPECT_EQ(api.Listen(f3), ukarch::Raw(ukarch::Status::kBadF));
  EXPECT_EQ(api.fdtab().open_count(), 3u);
}

// ---- allocator stats survive a full app run ----------------------------------------

TEST(Integration, NoLeaksAcrossServerLifetime) {
  env::TestBed bed(env::Profile::UnikraftKvm());
  std::uint64_t baseline = bed.server().alloc->stats().bytes_in_use;
  {
    apps::RedisServer server(&bed.api(), bed.server().alloc.get(), 6379);
    server.Start();
    auto sock = bed.client().stack->TcpConnect(env::TestBed::kServerIp, 6379);
    for (int i = 0; i < 200; ++i) {
      bed.Poll();
      server.PumpOnce();
    }
    for (int k = 0; k < 20; ++k) {
      std::string cmd = apps::RespCommand({"SET", "key" + std::to_string(k),
                                           std::string(512, 'v')});
      sock->Send(std::span(reinterpret_cast<const std::uint8_t*>(cmd.data()),
                           cmd.size()));
      bed.Poll();
      server.PumpOnce();
    }
    for (int i = 0; i < 200; ++i) {
      bed.Poll();
      server.PumpOnce();
    }
    EXPECT_GE(bed.server().alloc->stats().bytes_in_use, baseline + 20 * 512);
    // Server (and its ValueStore) destructs here.
  }
  EXPECT_LE(bed.server().alloc->stats().bytes_in_use, baseline + 4096);
}

// ---- scheduler preemption driven by syscall entry -----------------------------------

TEST(Integration, SyscallsArePreemptionPoints) {
  ukboot::InstanceConfig cfg;
  cfg.memory_bytes = 32 << 20;
  cfg.preemptive = true;
  ukboot::Instance vm(cfg);
  ASSERT_TRUE(vm.Boot().ok);
  // A shim wired to the instance scheduler: each Call runs a PreemptPoint.
  posix::SyscallShim shim(&vm.clock(), posix::DispatchMode::kDirectCall,
                          vm.scheduler());
  shim.Register(posix::SyscallNumber("getpid"),
                [](const posix::SyscallArgs&) -> std::int64_t { return 1; });
  std::string trace;
  auto worker = [&](char c) {
    return [&trace, c, &vm, &shim] {
      for (int i = 0; i < 3; ++i) {
        trace += c;
        vm.clock().Charge(1'000'000);  // exceed the quantum
        shim.Call(posix::SyscallNumber("getpid"));
      }
    };
  };
  vm.scheduler()->CreateThread("a", worker('a'));
  vm.scheduler()->CreateThread("b", worker('b'));
  EXPECT_EQ(vm.scheduler()->Run(), 0u);
  EXPECT_EQ(trace, "ababab");  // strict alternation: preempted at syscalls
  EXPECT_GE(vm.scheduler()->stats().preemptions, 4u);
}

}  // namespace
