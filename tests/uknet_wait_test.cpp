// Interrupt-driven idle: NetStack::PollWait blocking on uksched wait queues.
//
// The contract under test (see src/uknet/DATAPATH.md "Interrupt-driven
// idle"): an idle PollWait performs ZERO poll iterations while blocked (the
// spin-counter assertions), a frame arrival wakes exactly the waiter of the
// queue it lands on, a burst costs one interrupt (storm avoidance), TCP RTO
// deadlines wake a blocked poller with no traffic at all, and the blocking
// path preserves the ZeroAllocGuard steady-state invariants.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "net_harness.h"
#include "apps/kvstore.h"
#include "posix/api.h"
#include "uknetdev/loopback.h"
#include "uksched/scheduler.h"
#include "vfscore/vfs.h"

namespace {

using namespace uknet;
using netharness::Host;
using netharness::RawPeer;
using netharness::ZeroAllocGuard;

// Single-image world over the loopback device: the TxBurst of a sender is
// the synchronous interrupt source, which makes wakeup ordering fully
// deterministic for the spin-counter assertions.
struct LoopWorld {
  explicit LoopWorld(std::uint16_t queues = 1) : mem(32 << 20) {
    std::uint64_t heap_gpa = mem.Carve(16 << 20, 4096);
    alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                     mem.At(heap_gpa, 16 << 20), 16 << 20);
    dev = std::make_unique<uknetdev::Loopback>(&mem);
    stack = std::make_unique<NetStack>(&mem, &clock, alloc.get());
    NetIf::Config cfg;
    cfg.ip = MakeIp(10, 0, 0, 1);
    cfg.queues = queues;
    netif = stack->AddInterface(dev.get(), cfg);
    netif->AddArpEntry(MakeIp(10, 0, 0, 1), dev->mac());  // self-send
    sched = uksched::MakeScheduler(alloc.get(), &clock);
    stack->SetScheduler(sched.get());
  }

  ukplat::Clock clock;
  ukplat::MemRegion mem;
  std::unique_ptr<ukalloc::Allocator> alloc;
  std::unique_ptr<uknetdev::Loopback> dev;
  std::unique_ptr<NetStack> stack;
  NetIf* netif = nullptr;
  std::unique_ptr<uksched::Scheduler> sched;
};

TEST(PollWait, IdlePollWaitBlocksWithoutSpinning) {
  LoopWorld w;
  auto server = w.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(7)));
  auto client = w.stack->UdpOpen();

  std::size_t handled = 0;
  bool waiter_done = false;
  w.sched->CreateThread("waiter", [&] {
    handled = w.stack->PollWait(0, /*timeout_cycles=*/10'000'000'000ull);
    waiter_done = true;
    std::uint8_t buf[16];
    EXPECT_EQ(w.stack->scheduler()->current()->name(), "waiter");
    EXPECT_EQ(server->RecvInto(buf), 4);
  });
  w.sched->CreateThread("prober", [&] {
    // The waiter ran first and is blocked by now: two drain passes (initial
    // + arm-then-check), then zero poll iterations for as long as it sleeps.
    const std::uint64_t base = w.stack->wait_stats().poll_iterations;
    EXPECT_EQ(base, 2u);
    EXPECT_EQ(w.stack->wait_stats().blocked_waits, 1u);
    for (int i = 0; i < 50; ++i) {
      w.sched->Yield();
      EXPECT_EQ(w.stack->wait_stats().poll_iterations, base) << "PollWait spun";
      EXPECT_FALSE(waiter_done);
    }
    std::uint8_t msg[4] = {1, 2, 3, 4};
    ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 1), 7, msg), 4);  // fires the intr
    w.sched->Yield();  // let the waiter run
    EXPECT_TRUE(waiter_done);
    // Exactly one more drain pass consumed the frame.
    EXPECT_EQ(w.stack->wait_stats().poll_iterations, base + 1);
  });
  EXPECT_EQ(w.sched->Run(), 0u);
  EXPECT_EQ(handled, 1u);
  EXPECT_EQ(w.stack->wait_stats().frame_wakeups, 1u);
  EXPECT_EQ(w.stack->wait_stats().timer_wakeups, 0u);
  EXPECT_EQ(w.netif->rx_wakeups(0), 1u);
}

TEST(PollWait, TimeoutWakesAndAdvancesVirtualClock) {
  LoopWorld w;
  constexpr std::uint64_t kTimeout = 500'000;
  std::size_t handled = 99;
  w.sched->CreateThread("waiter", [&] { handled = w.stack->PollWait(0, kTimeout); });
  w.sched->Run();
  EXPECT_EQ(handled, 0u);
  EXPECT_EQ(w.stack->wait_stats().blocked_waits, 1u);
  EXPECT_EQ(w.stack->wait_stats().timer_wakeups, 1u);
  EXPECT_EQ(w.stack->wait_stats().frame_wakeups, 0u);
  // Initial drain, arm-then-check drain, post-timeout timer drain: 3 total.
  EXPECT_EQ(w.stack->wait_stats().poll_iterations, 3u);
  // The scheduler halted and jumped the clock to the deadline (no spinning).
  EXPECT_GE(w.clock.cycles(), kTimeout);
  EXPECT_EQ(w.sched->stats().idle_advances, 1u);
}

TEST(PollWait, FrameWakesOnlyItsQueueWaiter) {
  LoopWorld w(2);
  ASSERT_EQ(w.netif->queue_count(), 2u);
  auto server = w.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(7)));
  // Find one client flow per RSS queue (the symmetric hash steers both the
  // outgoing request and — on the loopback — its device-side classification).
  std::shared_ptr<UdpSocket> on_queue[2];
  std::vector<std::shared_ptr<UdpSocket>> opened;
  while (on_queue[0] == nullptr || on_queue[1] == nullptr) {
    auto sock = w.stack->UdpOpen();
    std::uint16_t q = w.netif->TxQueueFor(MakeIp(10, 0, 0, 1), sock->local_port(), 7);
    if (on_queue[q] == nullptr) {
      on_queue[q] = sock;
    }
    opened.push_back(std::move(sock));
    ASSERT_LT(opened.size(), 64u) << "hash never covered both queues";
  }

  bool done0 = false;
  bool done1 = false;
  w.sched->CreateThread("wait-q0", [&] {
    EXPECT_EQ(w.stack->PollWait(0, 10'000'000'000ull), 1u);
    done0 = true;
  });
  w.sched->CreateThread("wait-q1", [&] {
    EXPECT_EQ(w.stack->PollWait(1, 10'000'000'000ull), 1u);
    done1 = true;
  });
  w.sched->CreateThread("driver", [&] {
    ASSERT_EQ(w.stack->wait_stats().blocked_waits, 2u);
    std::uint8_t msg[4] = {9, 9, 9, 9};
    ASSERT_EQ(on_queue[0]->SendTo(MakeIp(10, 0, 0, 1), 7, msg), 4);
    w.sched->Yield();
    EXPECT_TRUE(done0);
    EXPECT_FALSE(done1) << "sibling queue's waiter was woken";
    EXPECT_EQ(w.stack->wait_stats().frame_wakeups, 1u);
    EXPECT_EQ(w.netif->rx_wakeups(0), 1u);
    EXPECT_EQ(w.netif->rx_wakeups(1), 0u);
    ASSERT_EQ(on_queue[1]->SendTo(MakeIp(10, 0, 0, 1), 7, msg), 4);
    w.sched->Yield();
    EXPECT_TRUE(done1);
  });
  EXPECT_EQ(w.sched->Run(), 0u);
  EXPECT_EQ(w.stack->wait_stats().frame_wakeups, 2u);
}

TEST(PollWait, BurstCostsOneInterrupt) {
  LoopWorld w;
  auto server = w.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(7)));
  auto client = w.stack->UdpOpen();
  constexpr std::size_t kBurst = 8;

  std::size_t handled = 0;
  w.sched->CreateThread("waiter", [&] {
    handled = w.stack->PollWait(0, 10'000'000'000ull);
  });
  w.sched->CreateThread("driver", [&] {
    const std::uint64_t intr_before = w.dev->QueueStats(0).rx_interrupts;
    std::uint8_t msg[4] = {7, 7, 7, 7};
    for (std::size_t i = 0; i < kBurst; ++i) {
      ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 1), 7, msg), 4);
    }
    w.sched->Yield();
    // Storm avoidance: the line fired on the first frame, disarmed itself,
    // and stayed silent for the rest of the burst.
    EXPECT_EQ(w.dev->QueueStats(0).rx_interrupts - intr_before, 1u);
  });
  EXPECT_EQ(w.sched->Run(), 0u);
  EXPECT_EQ(handled, kBurst);
  EXPECT_EQ(w.stack->wait_stats().frame_wakeups, 1u);
  EXPECT_EQ(server->queued(), kBurst);
}

TEST(PollWait, AllQueuesWaiterReturningKeepsSiblingArmed) {
  // Regression: a kAllQueues waiter returning used to disarm EVERY queue's
  // interrupt, including the line a still-blocked per-queue sibling was
  // sleeping on — the sibling then never woke on its frame (lost wakeup).
  // Arm counts make the last holder the only one that disarms.
  LoopWorld w(2);
  auto server = w.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(7)));
  std::shared_ptr<UdpSocket> on_queue[2];
  while (on_queue[0] == nullptr || on_queue[1] == nullptr) {
    auto sock = w.stack->UdpOpen();
    std::uint16_t q = w.netif->TxQueueFor(MakeIp(10, 0, 0, 1), sock->local_port(), 7);
    if (on_queue[q] == nullptr) {
      on_queue[q] = sock;
    }
  }

  bool q0_done = false;
  bool all_done = false;
  w.sched->CreateThread("wait-q0", [&] {
    EXPECT_EQ(w.stack->PollWait(0, 10'000'000'000ull), 1u);
    q0_done = true;
  });
  w.sched->CreateThread("wait-all", [&] {
    EXPECT_GE(w.stack->PollWait(NetStack::kAllQueues, 10'000'000'000ull), 1u);
    all_done = true;
  });
  w.sched->CreateThread("driver", [&] {
    std::uint8_t msg[4] = {5, 5, 5, 5};
    // Wake and retire the kAllQueues waiter with a queue-1 frame...
    ASSERT_EQ(on_queue[1]->SendTo(MakeIp(10, 0, 0, 1), 7, msg), 4);
    w.sched->Yield();
    EXPECT_TRUE(all_done);
    EXPECT_FALSE(q0_done);
    // ...then queue 0's own frame MUST still fire and wake the sibling.
    ASSERT_EQ(on_queue[0]->SendTo(MakeIp(10, 0, 0, 1), 7, msg), 4);
    w.sched->Yield();
    EXPECT_TRUE(q0_done) << "kAllQueues exit disarmed the sibling's line";
  });
  EXPECT_EQ(w.sched->Run(), 0u);
  EXPECT_EQ(w.stack->wait_stats().timer_wakeups, 0u) << "a waiter slept to timeout";
}

TEST(PollWait, RtoDeadlineWakesBlockedPollerWithoutTraffic) {
  ukplat::Clock clock;
  ukplat::Wire wire(&clock);
  Host host(&clock, &wire, 0, MakeIp(10, 0, 0, 1));
  RawPeer peer;
  peer.wire = &wire;
  peer.host_mac = host.nic->mac();
  peer.ip = MakeIp(10, 0, 0, 2);
  peer.host_ip = MakeIp(10, 0, 0, 1);
  host.netif->AddArpEntry(peer.ip, peer.mac);
  auto sched_owner = uksched::MakeScheduler(host.alloc.get(), &clock);
  auto& sched = *sched_owner;
  host.stack->SetScheduler(&sched);
  host.stack->rto_cycles = 200'000;

  std::shared_ptr<TcpSocket> client;
  sched.CreateThread("conn", [&] {
    client = host.stack->TcpConnect(peer.ip, 7);
    for (int i = 0; i < 4; ++i) {
      host.stack->Poll();
      peer.Poll();
    }
    ASSERT_FALSE(peer.segs.empty());
    const std::uint32_t iss = peer.segs.back().hdr.seq;
    peer.SendTcp(7, client->local_port(), kTcpSyn | kTcpAck, 1000, iss + 1, 65535);
    for (int i = 0; i < 4; ++i) {
      host.stack->Poll();
      peer.Poll();
    }
    ASSERT_TRUE(client->connected());

    std::uint8_t data[100];
    std::memset(data, 'r', sizeof(data));
    ASSERT_EQ(client->Send(data), 100);
    host.stack->Poll();  // first transmission goes out
    peer.Poll();         // the peer records it and never ACKs
    const std::size_t segs_before = peer.segs.size();

    // No caller timeout: the RTO of the in-flight data is the only deadline,
    // and it must wake the blocked poller and retransmit.
    EXPECT_EQ(host.stack->PollWait(), 0u);
    EXPECT_GE(client->tcp_stats().retransmissions, 1u);
    peer.Poll();
    EXPECT_GT(peer.segs.size(), segs_before) << "no retransmission reached the wire";
  });
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_EQ(host.stack->wait_stats().timer_wakeups, 1u);
  EXPECT_EQ(host.stack->wait_stats().frame_wakeups, 0u);
  EXPECT_GE(sched.stats().idle_advances, 1u);
}

TEST(PollWait, VirtioWireSignalWakesBlockedHost) {
  ukplat::Clock clock;
  ukplat::Wire wire(&clock);
  Host a(&clock, &wire, 0, MakeIp(10, 0, 0, 1));
  Host b(&clock, &wire, 1, MakeIp(10, 0, 0, 2));
  a.netif->AddArpEntry(MakeIp(10, 0, 0, 2), b.nic->mac());
  b.netif->AddArpEntry(MakeIp(10, 0, 0, 1), a.nic->mac());
  auto sched_owner = uksched::MakeScheduler(b.alloc.get(), &clock);
  auto& sched = *sched_owner;
  b.stack->SetScheduler(&sched);

  auto server = b.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(7)));
  auto client = a.stack->UdpOpen();

  std::size_t handled = 0;
  bool done = false;
  sched.CreateThread("server", [&] {
    handled = b.stack->PollWait();  // any queue, no timeout
    done = true;
  });
  sched.CreateThread("client", [&] {
    // The server is parked. The client's send pumps ITS device only; b's
    // device side runs off the wire-activity signal (the vhost thread) and
    // must raise the armed interrupt on its own.
    std::uint8_t msg[3] = {1, 2, 3};
    ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 7, msg), 3);
    sched.Yield();
    EXPECT_TRUE(done);
  });
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_GE(handled, 1u);
  EXPECT_EQ(b.stack->wait_stats().frame_wakeups, 1u);
  auto dg = server->RecvFrom();
  ASSERT_TRUE(dg.has_value());
  EXPECT_EQ(dg->payload.size(), 3u);
}

TEST(PollWait, BlockingUdpEchoHoldsZeroAllocInvariants) {
  ukplat::Clock clock;
  ukplat::Wire wire(&clock);
  Host a(&clock, &wire, 0, MakeIp(10, 0, 0, 1));
  Host b(&clock, &wire, 1, MakeIp(10, 0, 0, 2));
  a.netif->AddArpEntry(MakeIp(10, 0, 0, 2), b.nic->mac());
  b.netif->AddArpEntry(MakeIp(10, 0, 0, 1), a.nic->mac());
  auto sched_owner = uksched::MakeScheduler(b.alloc.get(), &clock);
  auto& sched = *sched_owner;
  b.stack->SetScheduler(&sched);

  auto server = b.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(9000)));
  auto client = a.stack->UdpOpen();

  constexpr std::size_t kBurst = 16;
  constexpr std::uint64_t kSlice = 1'000'000;  // bounded sleeps: loop re-checks stop
  bool stop = false;
  ZeroAllocGuard guard({b.netif->tx_pool(0), b.netif->rx_pool(0)}, b.alloc.get());

  sched.CreateThread("echo-server", [&] {
    std::uint8_t buf[64];
    Ip4Addr src_ip = 0;
    std::uint16_t src_port = 0;
    while (!stop) {
      b.stack->PollWait(NetStack::kAllQueues, kSlice);
      std::int64_t n;
      while ((n = server->RecvInto(buf, &src_ip, &src_port)) > 0) {
        ASSERT_EQ(server->SendTo(src_ip, src_port, std::span(buf, static_cast<std::size_t>(n))),
                  n);
      }
    }
  });
  sched.CreateThread("load", [&] {
    auto run_round = [&] {
      std::uint8_t msg[8] = {'w', 'a', 'i', 't', 0, 0, 0, 0};
      for (std::size_t i = 0; i < kBurst; ++i) {
        msg[4] = static_cast<std::uint8_t>(i);
        ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 9000, msg), 8);
      }
      std::size_t replies = 0;
      std::uint8_t buf[64];
      for (int spins = 0; replies < kBurst && spins < 1000; ++spins) {
        sched.Yield();  // let the echo server run
        a.stack->Poll();
        while (client->RecvInto(buf) > 0) {
          ++replies;
        }
      }
      ASSERT_EQ(replies, kBurst);
    };
    run_round();     // warmup: ARP settled, pools primed, server parked once
    guard.Rebase();  // steady state starts here
    run_round();
    // The blocking machinery adds nothing to the per-packet budget: one TX
    // netbuf per reply, one RX ring refill per request, zero heap.
    EXPECT_EQ(guard.pool_allocs(0), kBurst);
    EXPECT_EQ(guard.pool_allocs(1), kBurst);
    guard.ExpectHeapSteady("blocking udp echo steady state");
    stop = true;
  });
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_GE(b.stack->wait_stats().blocked_waits, 1u);
  EXPECT_GE(b.stack->wait_stats().frame_wakeups, 1u);
}

TEST(PollWait, KvServerSocketModePumpQueueWaitBlocks) {
  ukplat::Clock clock;
  ukplat::Wire wire(&clock);
  Host a(&clock, &wire, 0, MakeIp(10, 0, 0, 1));
  Host b(&clock, &wire, 1, MakeIp(10, 0, 0, 2));
  a.netif->AddArpEntry(MakeIp(10, 0, 0, 2), b.nic->mac());
  b.netif->AddArpEntry(MakeIp(10, 0, 0, 1), a.nic->mac());
  auto sched_owner = uksched::MakeScheduler(b.alloc.get(), &clock);
  auto& sched = *sched_owner;
  vfscore::Vfs vfs;
  posix::PosixApi api(&clock, &vfs, b.stack.get(), posix::DispatchMode::kDirectCall,
                      &sched);
  apps::KvServer server(&api, 7777, apps::KvMode::kSocketSingle);
  // EnableWait must attach the scheduler to the stack itself, or the
  // delegated PollWait would silently degrade to a spin.
  server.EnableWait(&sched);
  ASSERT_TRUE(server.Start());
  ASSERT_TRUE(b.stack->CanBlock() || b.stack->scheduler() == &sched);

  auto client = a.stack->UdpOpen();
  sched.CreateThread("kv-server", [&] {
    while (server.requests() == 0) {
      server.PumpQueueWait(0, 50'000'000);
    }
  });
  sched.CreateThread("kv-client", [&] {
    EXPECT_EQ(server.requests(), 0u);
    apps::KvRequest set{true, 7, "seven"};
    auto payload = apps::EncodeKvRequest(set);
    ASSERT_GT(client->SendTo(MakeIp(10, 0, 0, 2), 7777, payload), 0);
  });
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_EQ(server.requests(), 1u);
  // The sleep really went through the stack's wait machinery.
  EXPECT_GE(b.stack->wait_stats().blocked_waits, 1u);
  EXPECT_GE(b.stack->wait_stats().frame_wakeups, 1u);
  EXPECT_GE(server.wait_stats().blocked_waits, 1u);
}

TEST(PosixBlocking, RecvFromSleepsUntilDatagram) {
  ukplat::Clock clock;
  ukplat::Wire wire(&clock);
  Host a(&clock, &wire, 0, MakeIp(10, 0, 0, 1));
  Host b(&clock, &wire, 1, MakeIp(10, 0, 0, 2));
  a.netif->AddArpEntry(MakeIp(10, 0, 0, 2), b.nic->mac());
  b.netif->AddArpEntry(MakeIp(10, 0, 0, 1), a.nic->mac());
  auto sched_owner = uksched::MakeScheduler(b.alloc.get(), &clock);
  auto& sched = *sched_owner;
  b.stack->SetScheduler(&sched);
  vfscore::Vfs vfs;
  posix::PosixApi api(&clock, &vfs, b.stack.get(), posix::DispatchMode::kDirectCall,
                      &sched);

  int fd = api.Socket(posix::SockType::kDgram);
  ASSERT_GE(fd, 3);
  ASSERT_EQ(api.Bind(fd, 7), 0);
  ASSERT_EQ(api.SetBlocking(fd, true), 0);
  EXPECT_TRUE(api.IsBlocking(fd));

  auto client = a.stack->UdpOpen();
  std::int64_t got = -1;
  sched.CreateThread("server", [&] {
    std::uint8_t buf[32];
    Ip4Addr src_ip = 0;
    std::uint16_t src_port = 0;
    got = api.RecvFrom(fd, buf, &src_ip, &src_port);  // must sleep, not -EAGAIN
    EXPECT_EQ(src_ip, MakeIp(10, 0, 0, 1));
  });
  sched.CreateThread("client", [&] {
    EXPECT_EQ(got, -1) << "blocking recvfrom returned before any datagram";
    std::uint8_t msg[5] = {'h', 'e', 'l', 'l', 'o'};
    ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 7, msg), 5);
  });
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_EQ(got, 5);
  EXPECT_GE(b.stack->wait_stats().blocked_waits, 1u);
}

TEST(PosixBlocking, AcceptSleepsUntilConnection) {
  ukplat::Clock clock;
  ukplat::Wire wire(&clock);
  Host a(&clock, &wire, 0, MakeIp(10, 0, 0, 1));
  Host b(&clock, &wire, 1, MakeIp(10, 0, 0, 2));
  a.netif->AddArpEntry(MakeIp(10, 0, 0, 2), b.nic->mac());
  b.netif->AddArpEntry(MakeIp(10, 0, 0, 1), a.nic->mac());
  auto sched_owner = uksched::MakeScheduler(b.alloc.get(), &clock);
  auto& sched = *sched_owner;
  b.stack->SetScheduler(&sched);
  vfscore::Vfs vfs;
  posix::PosixApi api(&clock, &vfs, b.stack.get(), posix::DispatchMode::kDirectCall,
                      &sched);

  int lfd = api.Socket(posix::SockType::kStream);
  ASSERT_GE(lfd, 3);
  ASSERT_EQ(api.Bind(lfd, 80), 0);
  ASSERT_EQ(api.Listen(lfd), 0);
  ASSERT_EQ(api.SetBlocking(lfd, true), 0);

  int cfd = -1;
  std::shared_ptr<TcpSocket> conn;
  sched.CreateThread("server", [&] { cfd = api.Accept(lfd); });
  sched.CreateThread("client", [&] {
    EXPECT_EQ(cfd, -1) << "blocking accept returned before any connection";
    conn = a.stack->TcpConnect(MakeIp(10, 0, 0, 2), 80);
    for (int i = 0; i < 50 && !conn->connected(); ++i) {
      a.stack->Poll();  // drives the client half of the handshake
      sched.Yield();    // the blocked accept drives the server half
    }
    EXPECT_TRUE(conn->connected());
  });
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_GE(cfd, 3);
  EXPECT_GE(b.stack->wait_stats().frame_wakeups, 1u);
}

}  // namespace
