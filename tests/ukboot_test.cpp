// Tests for ukboot: page-table construction/walks (Fig 21 substrate), boot
// sequencing, inittab ordering, minimum-memory failure modes (Fig 11).
#include <gtest/gtest.h>

#include "ukboot/instance.h"
#include "ukboot/pagetable.h"

namespace {

using namespace ukboot;

class PageTableTest : public ::testing::Test {
 protected:
  PageTableTest() : mem_(64 << 20), builder_(&mem_) {}
  ukplat::MemRegion mem_;
  PageTableBuilder builder_;
};

TEST_F(PageTableTest, IdentityMap4K) {
  std::uint64_t root = builder_.CreateRoot();
  ASSERT_NE(root, PageTableBuilder::kBadGpa);
  ASSERT_TRUE(builder_.MapRange(root, 0, 1 << 20, LeafSize::k4K));
  for (std::uint64_t addr : {0ull, 4096ull, 123456ull, (1ull << 20) - 1}) {
    auto phys = builder_.Walk(root, addr);
    ASSERT_TRUE(phys.has_value()) << addr;
    EXPECT_EQ(*phys, addr);
  }
  EXPECT_FALSE(builder_.Walk(root, 2 << 20).has_value());
}

TEST_F(PageTableTest, IdentityMap2M) {
  std::uint64_t root = builder_.CreateRoot();
  ASSERT_TRUE(builder_.MapRange(root, 0, 16 << 20, LeafSize::k2M));
  auto phys = builder_.Walk(root, (4 << 20) + 12345);
  ASSERT_TRUE(phys.has_value());
  EXPECT_EQ(*phys, static_cast<std::uint64_t>((4 << 20) + 12345));
  // A 2M mapping uses far fewer PT pages than 4K would.
  EXPECT_LT(builder_.pages_allocated(), 8u);
}

TEST_F(PageTableTest, EntryCountScalesWithMemory) {
  std::uint64_t root = builder_.CreateRoot();
  std::uint64_t before = builder_.entries_written();
  ASSERT_TRUE(builder_.MapRange(root, 0, 8 << 20, LeafSize::k2M));
  std::uint64_t small = builder_.entries_written() - before;

  PageTableBuilder b2(&mem_);
  std::uint64_t root2 = b2.CreateRoot();
  ASSERT_TRUE(b2.MapRange(root2, 0, 32 << 20, LeafSize::k2M));
  // 4x the memory must write ~4x the leaf entries (Fig 21's linear shape).
  EXPECT_GE(b2.entries_written(), small * 3);
}

TEST_F(PageTableTest, UnmapRemovesTranslation) {
  std::uint64_t root = builder_.CreateRoot();
  ASSERT_TRUE(builder_.MapRange(root, 0, 1 << 20, LeafSize::k4K));
  EXPECT_TRUE(builder_.Unmap(root, 8192));
  EXPECT_FALSE(builder_.Walk(root, 8192).has_value());
  EXPECT_TRUE(builder_.Walk(root, 4096).has_value());
  EXPECT_FALSE(builder_.Unmap(root, 8192));  // already gone
}

TEST_F(PageTableTest, MixedLeafSizes) {
  std::uint64_t root = builder_.CreateRoot();
  ASSERT_TRUE(builder_.MapRange(root, 0, 2 << 20, LeafSize::k4K));
  ASSERT_TRUE(builder_.MapRange(root, 2 << 20, 14ull << 20, LeafSize::k2M));
  EXPECT_TRUE(builder_.Walk(root, 4096).has_value());
  EXPECT_TRUE(builder_.Walk(root, 3 << 20).has_value());
}

TEST_F(PageTableTest, OutOfMemoryFailsCleanly) {
  ukplat::MemRegion tiny(16 * 1024);
  PageTableBuilder b(&tiny);
  std::uint64_t root = b.CreateRoot();
  ASSERT_NE(root, PageTableBuilder::kBadGpa);
  EXPECT_FALSE(b.MapRange(root, 0, 1ull << 30, LeafSize::k4K));
}

// ---- Instance boot ------------------------------------------------------------

TEST(InstanceBoot, BootsWithDefaults) {
  Instance vm(InstanceConfig{});
  BootReport report = vm.Boot();
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_TRUE(vm.booted());
  EXPECT_NE(vm.heap(), nullptr);
  EXPECT_NE(vm.scheduler(), nullptr);
  EXPECT_GT(report.guest_us, 0.0);
  EXPECT_GT(report.vmm_us, 0.0);
}

TEST(InstanceBoot, VmmShareMatchesModel) {
  InstanceConfig cfg;
  cfg.vmm = ukplat::VmmModel::Firecracker();
  Instance vm(cfg);
  BootReport report = vm.Boot();
  ASSERT_TRUE(report.ok);
  EXPECT_NEAR(report.vmm_us, ukplat::VmmModel::Firecracker().LaunchUs(0), 1e-9);
}

TEST(InstanceBoot, InittabRunsInStageOrder) {
  Instance vm(InstanceConfig{});
  std::string trace;
  vm.RegisterInit(InitStage::kSys, "lwip", [&](Instance&) {
    trace += 'n';
    return ukarch::Status::kOk;
  });
  vm.RegisterInit(InitStage::kBus, "virtio", [&](Instance&) {
    trace += 'b';
    return ukarch::Status::kOk;
  });
  vm.RegisterInit(InitStage::kRootfs, "ramfs", [&](Instance&) {
    trace += 'r';
    return ukarch::Status::kOk;
  });
  vm.RegisterInit(InitStage::kLate, "app", [&](Instance&) {
    trace += 'a';
    return ukarch::Status::kOk;
  });
  ASSERT_TRUE(vm.Boot().ok);
  EXPECT_EQ(trace, "brna");  // bus, rootfs, sys(lwip='n'), late
}

TEST(InstanceBoot, InitFailureAbortsBoot) {
  Instance vm(InstanceConfig{});
  bool later_ran = false;
  vm.RegisterInit(InitStage::kBus, "broken", [](Instance&) {
    return ukarch::Status::kIo;
  });
  vm.RegisterInit(InitStage::kLate, "app", [&](Instance&) {
    later_ran = true;
    return ukarch::Status::kOk;
  });
  BootReport report = vm.Boot();
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(later_ran);
  EXPECT_NE(report.error.find("broken"), std::string::npos);
}

TEST(InstanceBoot, TooLittleMemoryFailsAtAllocator) {
  InstanceConfig cfg;
  cfg.memory_bytes = 64 * 1024;  // far below any workable heap
  cfg.allocator = ukalloc::Backend::kBuddy;
  Instance vm(cfg);
  BootReport report = vm.Boot();
  EXPECT_FALSE(report.ok);
}

TEST(InstanceBoot, SchedulerOptional) {
  InstanceConfig cfg;
  cfg.enable_scheduler = false;  // run-to-completion unikernel
  Instance vm(cfg);
  ASSERT_TRUE(vm.Boot().ok);
  EXPECT_EQ(vm.scheduler(), nullptr);
}

TEST(InstanceBoot, DynamicPagingCoversAllMemory) {
  InstanceConfig cfg;
  cfg.memory_bytes = 64 << 20;
  cfg.paging = PagingMode::kDynamic;
  Instance vm(cfg);
  ASSERT_TRUE(vm.Boot().ok);
  ASSERT_NE(vm.pagetable(), nullptr);
  auto phys = vm.pagetable()->Walk(vm.pagetable_root(), (48ull << 20) + 17);
  ASSERT_TRUE(phys.has_value());
  EXPECT_EQ(*phys, (48ull << 20) + 17);
}

TEST(InstanceBoot, StaticPagingConstantWork) {
  InstanceConfig small_cfg;
  small_cfg.memory_bytes = 8 << 20;
  small_cfg.paging = PagingMode::kStatic;
  Instance small_vm(small_cfg);
  ASSERT_TRUE(small_vm.Boot().ok);
  std::uint64_t small_pages = small_vm.pagetable()->pages_allocated();

  InstanceConfig big_cfg;
  big_cfg.memory_bytes = 256 << 20;
  big_cfg.paging = PagingMode::kStatic;
  Instance big_vm(big_cfg);
  ASSERT_TRUE(big_vm.Boot().ok);
  // Static PT work must not scale with guest memory.
  EXPECT_EQ(big_vm.pagetable()->pages_allocated(), small_pages);
}

TEST(InstanceBoot, EveryAllocatorBackendBoots) {
  for (ukalloc::Backend b : ukalloc::AllBackends()) {
    InstanceConfig cfg;
    cfg.allocator = b;
    Instance vm(cfg);
    BootReport report = vm.Boot();
    EXPECT_TRUE(report.ok) << ukalloc::BackendName(b) << ": " << report.error;
  }
}

TEST(InstanceBoot, StageTimingsRecorded) {
  Instance vm(InstanceConfig{});
  vm.RegisterInit(InitStage::kSys, "work", [](Instance& inst) {
    // Allocate something so the stage takes measurable time.
    void* p = inst.heap()->Malloc(1 << 16);
    inst.heap()->Free(p);
    return ukarch::Status::kOk;
  });
  BootReport report = vm.Boot();
  ASSERT_TRUE(report.ok);
  bool found = false;
  for (const BootStageTime& st : report.stages) {
    if (st.name == "sys:work") {
      found = true;
      EXPECT_GE(st.real_ns, 0.0);
    }
  }
  EXPECT_TRUE(found);
}

// ---- Instance reboot (fleet lifecycle) ----------------------------------------

TEST(InstanceReboot, ShutdownReturnsToPreBootState) {
  Instance vm(InstanceConfig{});
  ASSERT_TRUE(vm.Boot().ok);
  ASSERT_TRUE(vm.booted());
  ASSERT_GT(vm.mem().carve_brk(), 0u);
  vm.Shutdown();
  EXPECT_FALSE(vm.booted());
  EXPECT_EQ(vm.heap(), nullptr);
  EXPECT_EQ(vm.scheduler(), nullptr);
  EXPECT_EQ(vm.pagetable(), nullptr);
  EXPECT_EQ(vm.mem().carve_brk(), 0u);  // guest RAM back at power-on
}

TEST(InstanceReboot, RebootReplaysInittabWithFreshTimings) {
  Instance vm(InstanceConfig{});
  int serve_runs = 0;
  vm.RegisterInit(InitStage::kSys, "serve", [&](Instance& inst) {
    // Model a server bringing state up on the heap each boot.
    void* p = inst.heap()->Malloc(1 << 12);
    if (p == nullptr) {
      return ukarch::Status::kNoMem;
    }
    inst.heap()->Free(p);
    ++serve_runs;
    return ukarch::Status::kOk;
  });

  BootReport first = vm.Boot();
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(vm.generation(), 1);
  const std::uint64_t first_in_use = vm.heap()->stats().bytes_in_use;
  const std::uint64_t first_brk = vm.mem().carve_brk();

  // Serve: leave allocator churn behind so the reboot has real state to
  // reclaim (freed before Shutdown, as an app teardown would).
  void* held = vm.heap()->Malloc(1 << 16);
  ASSERT_NE(held, nullptr);
  vm.heap()->Free(held);

  vm.Shutdown();
  BootReport second = vm.Boot();
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(vm.generation(), 2);
  EXPECT_EQ(serve_runs, 2);  // inittab replayed

  // Per-stage timings are reported again, stage for stage.
  ASSERT_EQ(second.stages.size(), first.stages.size());
  for (std::size_t i = 0; i < second.stages.size(); ++i) {
    EXPECT_EQ(second.stages[i].name, first.stages[i].name);
    EXPECT_GE(second.stages[i].real_ns, 0.0);
  }
  EXPECT_GT(second.guest_us, 0.0);

  // Allocator state fully reclaimed: the fresh heap's live bytes and the
  // guest RAM carve point match the first boot exactly.
  EXPECT_EQ(vm.heap()->stats().bytes_in_use, first_in_use);
  EXPECT_EQ(vm.mem().carve_brk(), first_brk);
}

TEST(InstanceReboot, RebootSurvivesManyCycles) {
  InstanceConfig cfg;
  cfg.memory_bytes = 8ull << 20;
  Instance vm(cfg);
  std::uint64_t brk_after_first = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    BootReport r = vm.Boot();
    ASSERT_TRUE(r.ok) << "cycle " << cycle << ": " << r.error;
    if (cycle == 0) {
      brk_after_first = vm.mem().carve_brk();
    } else {
      // No creeping carve growth across reboots (the old MemRegion bump
      // allocator would exhaust guest RAM after a handful of cycles).
      EXPECT_EQ(vm.mem().carve_brk(), brk_after_first) << "cycle " << cycle;
    }
    vm.Shutdown();
  }
  EXPECT_EQ(vm.generation(), 5);
}

}  // namespace
