// Tests for the uknet TCP/IP stack: wire formats, ARP, ICMP, UDP, and the
// TCP state machine end-to-end over real virtio-net devices and a wire.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "ukalloc/registry.h"
#include "uknet/stack.h"
#include "uknetdev/virtio_net.h"

namespace {

using namespace uknet;

// ---- wire formats ----------------------------------------------------------------

TEST(WireFormat, InternetChecksumKnownVector) {
  // RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InternetChecksum(data), 0x220d);
}

TEST(WireFormat, ChecksumOfPacketWithChecksumIsZero) {
  std::uint8_t hdr[kIp4HdrBytes];
  Ip4Header ip;
  ip.total_len = kIp4HdrBytes;  // header-only packet so Parse's bound holds
  ip.proto = kIpProtoTcp;
  ip.src = MakeIp(10, 0, 0, 1);
  ip.dst = MakeIp(10, 0, 0, 2);
  ip.Serialize(hdr);
  EXPECT_EQ(InternetChecksum(hdr), 0);
  auto parsed = Ip4Header::Parse(std::span<const std::uint8_t>(hdr, sizeof(hdr)));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src, ip.src);
  // A flipped bit must be rejected.
  hdr[15] ^= 0x40;
  EXPECT_FALSE(Ip4Header::Parse(std::span<const std::uint8_t>(hdr, sizeof(hdr))).has_value());
}

TEST(WireFormat, EthRoundTrip) {
  EthHeader eth;
  eth.dst = uknetdev::MacAddr{{1, 2, 3, 4, 5, 6}};
  eth.src = uknetdev::MacAddr{{7, 8, 9, 10, 11, 12}};
  eth.ethertype = kEthTypeIp4;
  std::uint8_t buf[kEthHdrBytes];
  eth.Serialize(buf);
  EthHeader back = EthHeader::Parse(std::span<const std::uint8_t>(buf, sizeof(buf)));
  EXPECT_EQ(back.dst, eth.dst);
  EXPECT_EQ(back.src, eth.src);
  EXPECT_EQ(back.ethertype, kEthTypeIp4);
}

TEST(WireFormat, ArpRoundTrip) {
  ArpPacket arp;
  arp.oper = 2;
  arp.sender_mac = uknetdev::MacAddr{{0xaa, 1, 2, 3, 4, 5}};
  arp.sender_ip = MakeIp(192, 168, 1, 1);
  arp.target_ip = MakeIp(192, 168, 1, 2);
  std::uint8_t buf[kArpBytes];
  arp.Serialize(buf);
  auto back = ArpPacket::Parse(std::span<const std::uint8_t>(buf, sizeof(buf)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->oper, 2);
  EXPECT_EQ(back->sender_ip, arp.sender_ip);
  EXPECT_EQ(back->sender_mac, arp.sender_mac);
}

TEST(WireFormat, UdpChecksumVerification) {
  std::uint8_t payload[] = {'h', 'i'};
  std::vector<std::uint8_t> dgram(kUdpHdrBytes + 2);
  UdpHeader udp;
  udp.src_port = 1234;
  udp.dst_port = 5678;
  std::memcpy(dgram.data() + kUdpHdrBytes, payload, 2);
  udp.Serialize(dgram.data(), MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), payload);
  auto ok = UdpHeader::Parse(dgram, MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->src_port, 1234);
  dgram[9] ^= 1;  // corrupt payload
  EXPECT_FALSE(
      UdpHeader::Parse(dgram, MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2)).has_value());
}

TEST(WireFormat, TcpChecksumVerification) {
  std::uint8_t payload[] = {1, 2, 3};
  std::vector<std::uint8_t> seg(kTcpHdrBytes + 3);
  TcpHeader tcp;
  tcp.src_port = 80;
  tcp.dst_port = 45000;
  tcp.seq = 1000;
  tcp.ack = 2000;
  tcp.flags = kTcpAck | kTcpPsh;
  tcp.window = 65535;
  std::memcpy(seg.data() + kTcpHdrBytes, payload, 3);
  tcp.Serialize(seg.data(), MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), payload);
  std::size_t hlen = 0;
  auto ok = TcpHeader::Parse(seg, MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), &hlen);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(hlen, kTcpHdrBytes);
  EXPECT_EQ(ok->seq, 1000u);
  EXPECT_EQ(ok->flags, kTcpAck | kTcpPsh);
  seg[21] ^= 1;  // corrupt a payload byte
  EXPECT_FALSE(
      TcpHeader::Parse(seg, MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), &hlen).has_value());
}

TEST(WireFormat, SeqArithmeticWraps) {
  EXPECT_TRUE(SeqLt(0xfffffff0u, 0x10u));  // wrapped comparison
  EXPECT_FALSE(SeqLt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(SeqLe(5u, 5u));
}

// ---- two hosts over a wire ---------------------------------------------------------

// A simulated host: guest RAM, allocator, virtio-net on one wire side, stack.
struct Host {
  Host(ukplat::Clock* clock, ukplat::Wire* wire, int side, Ip4Addr ip)
      : mem(32 << 20) {
    std::uint64_t heap_gpa = mem.Carve(24 << 20, 4096);
    alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf, mem.At(heap_gpa, 24 << 20),
                                     24 << 20);
    uknetdev::VirtioNet::Config cfg;
    cfg.backend = uknetdev::VirtioBackend::kVhostUser;
    cfg.wire_side = side;
    cfg.mac = uknetdev::MacAddr{{2, 0, 0, 0, 0, static_cast<std::uint8_t>(side + 1)}};
    cfg.queue_size = 128;
    nic = std::make_unique<uknetdev::VirtioNet>(&mem, clock, wire, cfg);
    stack = std::make_unique<NetStack>(&mem, clock, alloc.get());
    NetIf::Config ifcfg;
    ifcfg.ip = ip;
    netif = stack->AddInterface(nic.get(), ifcfg);
  }

  ukplat::MemRegion mem;
  std::unique_ptr<ukalloc::Allocator> alloc;
  std::unique_ptr<uknetdev::VirtioNet> nic;
  std::unique_ptr<NetStack> stack;
  NetIf* netif = nullptr;
};

class TwoHostTest : public ::testing::Test {
 protected:
  TwoHostTest()
      : wire_(&clock_),
        a_(&clock_, &wire_, 0, MakeIp(10, 0, 0, 1)),
        b_(&clock_, &wire_, 1, MakeIp(10, 0, 0, 2)) {}

  // Pumps both stacks until |pred| holds.
  bool PumpUntil(const std::function<bool()>& pred, int iters = 2000) {
    for (int i = 0; i < iters; ++i) {
      if (pred()) {
        return true;
      }
      a_.stack->Poll();
      b_.stack->Poll();
    }
    return pred();
  }

  ukplat::Clock clock_;
  ukplat::Wire wire_;
  Host a_;
  Host b_;
};

TEST_F(TwoHostTest, InterfacesComeUp) {
  ASSERT_NE(a_.netif, nullptr);
  ASSERT_NE(b_.netif, nullptr);
  EXPECT_EQ(a_.netif->ip(), MakeIp(10, 0, 0, 1));
}

TEST_F(TwoHostTest, ArpResolutionViaRequestReply) {
  // First ping triggers ARP; the reply releases the parked packet.
  ASSERT_TRUE(a_.stack->Ping(MakeIp(10, 0, 0, 2), 1));
  EXPECT_TRUE(PumpUntil([&] { return a_.stack->pings_answered() == 1; }));
  EXPECT_GE(a_.netif->if_stats().arp_requests, 1u);
  EXPECT_GE(b_.netif->if_stats().arp_replies, 1u);
}

TEST_F(TwoHostTest, PingStorm) {
  for (std::uint16_t i = 0; i < 20; ++i) {
    a_.stack->Ping(MakeIp(10, 0, 0, 2), i);
    a_.stack->Poll();
    b_.stack->Poll();
  }
  EXPECT_TRUE(PumpUntil([&] { return a_.stack->pings_answered() >= 19; }));
}

TEST_F(TwoHostTest, UdpDatagramDelivery) {
  auto server = b_.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(53)));
  auto client = a_.stack->UdpOpen();
  std::uint8_t query[] = {'d', 'n', 's', '?'};
  EXPECT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 53, query), 4);
  ASSERT_TRUE(PumpUntil([&] { return server->readable(); }));
  auto dgram = server->RecvFrom();
  ASSERT_TRUE(dgram.has_value());
  EXPECT_EQ(dgram->payload.size(), 4u);
  EXPECT_EQ(dgram->src_ip, MakeIp(10, 0, 0, 1));
  // Reply path.
  std::uint8_t resp[] = {'o', 'k'};
  server->SendTo(dgram->src_ip, dgram->src_port, resp);
  ASSERT_TRUE(PumpUntil([&] { return client->readable(); }));
  auto back = client->RecvFrom();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload[0], 'o');
}

TEST_F(TwoHostTest, ArpFlushSendsParkedPacketsAsOneBatch) {
  auto server = b_.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(7000)));
  auto client = a_.stack->UdpOpen();
  // Cold ARP cache: the first sends park whole netbufs behind resolution
  // (bounded at 8); the ARP reply must flush them in a single batch.
  constexpr std::size_t kParked = 5;
  for (std::size_t i = 0; i < kParked; ++i) {
    std::uint8_t msg[4] = {'a', 'r', 'p', static_cast<std::uint8_t>(i)};
    ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 7000, msg), 4);
  }
  ASSERT_TRUE(PumpUntil([&] { return server->queued() >= kParked; }));
  for (std::size_t i = 0; i < kParked; ++i) {
    auto d = server->RecvFrom();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->payload[3], static_cast<std::uint8_t>(i));  // order preserved
  }
  EXPECT_EQ(a_.netif->if_stats().ip_tx, kParked);
  EXPECT_EQ(a_.netif->if_stats().pending_dropped, 0u);
}

TEST_F(TwoHostTest, BatchedUdpEchoZeroCopy) {
  auto server = b_.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(9000)));
  auto client = a_.stack->UdpOpen();
  // Warm the ARP caches so the burst is not throttled by resolution.
  ASSERT_TRUE(a_.stack->Ping(MakeIp(10, 0, 0, 2), 1));
  ASSERT_TRUE(PumpUntil([&] { return a_.stack->pings_answered() == 1; }));

  constexpr std::size_t kBurst = 16;
  for (std::size_t i = 0; i < kBurst; ++i) {
    std::uint8_t msg[8] = {'b', 'a', 't', 'c', 'h', static_cast<std::uint8_t>(i),
                           0,   0};
    ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 9000, msg), 8);
  }
  ASSERT_TRUE(PumpUntil([&] { return server->queued() >= kBurst; }));

  // Zero-copy batch view: every datagram is a view into a retained driver
  // netbuf, surfaced in send order without copying.
  const DatagramView* views[kBurst];
  ASSERT_EQ(server->PeekBatch(views, kBurst), kBurst);
  for (std::size_t i = 0; i < kBurst; ++i) {
    ASSERT_EQ(views[i]->len, 8u);
    EXPECT_EQ(views[i]->data[5], static_cast<std::uint8_t>(i));
    EXPECT_NE(views[i]->nb, nullptr);
    EXPECT_EQ(views[i]->src_ip, MakeIp(10, 0, 0, 1));
  }
  // Echo the whole batch straight out of the views, then release in one go.
  for (std::size_t i = 0; i < kBurst; ++i) {
    ASSERT_EQ(server->SendTo(views[i]->src_ip, views[i]->src_port,
                             std::span(views[i]->data, views[i]->len)),
              8);
  }
  server->ReleaseFront(kBurst);
  EXPECT_EQ(server->queued(), 0u);

  ASSERT_TRUE(PumpUntil([&] { return client->queued() >= kBurst; }));
  std::uint8_t out[8];
  for (std::size_t i = 0; i < kBurst; ++i) {
    Ip4Addr src = 0;
    std::uint16_t port = 0;
    ASSERT_EQ(client->RecvInto(out, &src, &port), 8);
    EXPECT_EQ(out[5], static_cast<std::uint8_t>(i));
    EXPECT_EQ(src, MakeIp(10, 0, 0, 2));
    EXPECT_EQ(port, 9000);
  }
  EXPECT_EQ(client->RecvInto(out, nullptr, nullptr),
            ukarch::Raw(ukarch::Status::kAgain));
}

TEST_F(TwoHostTest, UdpPortCollisionRejected) {
  auto s1 = b_.stack->UdpOpen();
  ASSERT_TRUE(Ok(s1->Bind(1000)));
  auto s2 = b_.stack->UdpOpen();
  EXPECT_EQ(s2->Bind(1000), ukarch::Status::kAddrInUse);
}

TEST_F(TwoHostTest, TcpHandshake) {
  auto listener = b_.stack->TcpListen(80);
  ASSERT_NE(listener, nullptr);
  auto client = a_.stack->TcpConnect(MakeIp(10, 0, 0, 2), 80);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->state(), TcpState::kSynSent);
  ASSERT_TRUE(PumpUntil([&] { return client->connected(); }));
  auto server_sock = listener->Accept();
  ASSERT_NE(server_sock, nullptr);
  EXPECT_EQ(server_sock->state(), TcpState::kEstablished);
  EXPECT_EQ(server_sock->remote_ip(), MakeIp(10, 0, 0, 1));
}

TEST_F(TwoHostTest, TcpDataBothDirections) {
  auto listener = b_.stack->TcpListen(7);
  auto client = a_.stack->TcpConnect(MakeIp(10, 0, 0, 2), 7);
  ASSERT_TRUE(PumpUntil([&] { return client->connected() && listener->backlog() > 0; }));
  auto server_sock = listener->Accept();

  std::string msg = "GET / HTTP/1.1\r\n\r\n";
  EXPECT_EQ(client->Send(std::span(reinterpret_cast<const std::uint8_t*>(msg.data()),
                                   msg.size())),
            static_cast<std::int64_t>(msg.size()));
  ASSERT_TRUE(PumpUntil([&] { return server_sock->readable(); }));
  std::uint8_t buf[64];
  std::int64_t n = server_sock->Recv(buf);
  ASSERT_EQ(n, static_cast<std::int64_t>(msg.size()));
  EXPECT_EQ(std::string(buf, buf + n), msg);

  std::string reply = "HTTP/1.1 200 OK\r\n\r\n";
  server_sock->Send(std::span(reinterpret_cast<const std::uint8_t*>(reply.data()),
                              reply.size()));
  ASSERT_TRUE(PumpUntil([&] { return client->readable(); }));
  n = client->Recv(buf);
  EXPECT_EQ(std::string(buf, buf + n), reply);
}

TEST_F(TwoHostTest, TcpBulkTransferSegmentsAndReassembles) {
  auto listener = b_.stack->TcpListen(9000);
  auto client = a_.stack->TcpConnect(MakeIp(10, 0, 0, 2), 9000);
  ASSERT_TRUE(PumpUntil([&] { return client->connected() && listener->backlog() > 0; }));
  auto server_sock = listener->Accept();

  // 256 KB: forces MSS segmentation, windowing, and multiple send calls.
  std::vector<std::uint8_t> data(256 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  std::size_t sent = 0;
  std::vector<std::uint8_t> received;
  received.reserve(data.size());
  std::uint8_t buf[4096];
  for (int rounds = 0; rounds < 200000 && received.size() < data.size(); ++rounds) {
    if (sent < data.size()) {
      std::int64_t n = client->Send(
          std::span(data.data() + sent, data.size() - sent));
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
      }
    }
    a_.stack->Poll();
    b_.stack->Poll();
    std::int64_t r = server_sock->Recv(buf);
    if (r > 0) {
      received.insert(received.end(), buf, buf + r);
    }
  }
  ASSERT_EQ(received.size(), data.size());
  EXPECT_EQ(received, data);
  EXPECT_GT(client->tcp_stats().segments_sent, data.size() / TcpSocket::kMss);
}

TEST_F(TwoHostTest, TcpGracefulClose) {
  auto listener = b_.stack->TcpListen(21);
  auto client = a_.stack->TcpConnect(MakeIp(10, 0, 0, 2), 21);
  ASSERT_TRUE(PumpUntil([&] { return client->connected() && listener->backlog() > 0; }));
  auto server_sock = listener->Accept();

  client->Close();
  ASSERT_TRUE(PumpUntil([&] { return server_sock->readable(); }));
  std::uint8_t buf[8];
  EXPECT_EQ(server_sock->Recv(buf), 0);  // EOF
  EXPECT_EQ(server_sock->state(), TcpState::kCloseWait);
  server_sock->Close();
  ASSERT_TRUE(PumpUntil([&] {
    return client->state() == TcpState::kTimeWait ||
           client->state() == TcpState::kClosed;
  }));
}

TEST_F(TwoHostTest, ConnectToClosedPortGetsRst) {
  auto client = a_.stack->TcpConnect(MakeIp(10, 0, 0, 2), 12345);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(PumpUntil([&] { return client->failed(); }));
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_GE(b_.stack->stats().rst_sent, 1u);
}

TEST_F(TwoHostTest, NoListenerUdpDropCounted) {
  auto client = a_.stack->UdpOpen();
  std::uint8_t data[] = {1};
  client->SendTo(MakeIp(10, 0, 0, 2), 9999, data);
  PumpUntil([&] { return b_.stack->stats().no_socket_drops > 0; }, 200);
  EXPECT_GE(b_.stack->stats().no_socket_drops, 1u);
}

// Lossy wire: TCP must retransmit and still deliver everything correctly.
class LossyTest : public ::testing::Test {
 protected:
  LossyTest() {
    ukplat::Wire::Config cfg;
    cfg.drop_rate = 0.02;  // every 50th frame vanishes
    wire_ = std::make_unique<ukplat::Wire>(&clock_, cfg);
    a_ = std::make_unique<Host>(&clock_, wire_.get(), 0, MakeIp(10, 0, 0, 1));
    b_ = std::make_unique<Host>(&clock_, wire_.get(), 1, MakeIp(10, 0, 0, 2));
    // Short virtual RTO so retransmissions trigger quickly; advance the
    // virtual clock manually between polls.
    a_->stack->rto_cycles = 10'000;
    b_->stack->rto_cycles = 10'000;
  }

  ukplat::Clock clock_;
  std::unique_ptr<ukplat::Wire> wire_;
  std::unique_ptr<Host> a_;
  std::unique_ptr<Host> b_;
};

TEST_F(LossyTest, TcpRecoversFromLoss) {
  a_->netif->AddArpEntry(MakeIp(10, 0, 0, 2), b_->nic->mac());
  b_->netif->AddArpEntry(MakeIp(10, 0, 0, 1), a_->nic->mac());
  auto listener = b_->stack->TcpListen(80);
  auto client = a_->stack->TcpConnect(MakeIp(10, 0, 0, 2), 80);

  std::vector<std::uint8_t> data(64 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i % 253);
  }
  std::size_t sent = 0;
  std::vector<std::uint8_t> received;
  std::shared_ptr<TcpSocket> server_sock;
  std::uint8_t buf[4096];
  for (int rounds = 0; rounds < 400000 && received.size() < data.size(); ++rounds) {
    clock_.Charge(2000);  // advance virtual time so RTOs can fire
    if (client->connected() && sent < data.size()) {
      std::int64_t n = client->Send(std::span(data.data() + sent, data.size() - sent));
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
      }
    }
    a_->stack->Poll();
    b_->stack->Poll();
    if (server_sock == nullptr) {
      server_sock = listener->Accept();
    } else {
      std::int64_t r = server_sock->Recv(buf);
      if (r > 0) {
        received.insert(received.end(), buf, buf + r);
      }
    }
  }
  ASSERT_EQ(received.size(), data.size());
  EXPECT_EQ(received, data);
  EXPECT_GT(client->tcp_stats().retransmissions, 0u);
}

}  // namespace
