// Tests for the uknet TCP/IP stack: wire formats, ARP, ICMP, UDP, and the
// TCP state machine end-to-end over real virtio-net devices and a wire.
// Host/fixture plumbing lives in net_harness.h, shared with the multi-queue
// and posix suites.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "net_harness.h"
#include "ukalloc/registry.h"
#include "uknet/stack.h"
#include "uknetdev/virtio_net.h"

namespace {

using namespace uknet;
using netharness::Host;
using netharness::LossyTest;
using netharness::RawPeer;
using netharness::RawPeerTest;
using netharness::RawRxTest;
using netharness::TwoHostTest;
using netharness::ZeroAllocGuard;

// ---- wire formats ----------------------------------------------------------------

TEST(WireFormat, InternetChecksumKnownVector) {
  // RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InternetChecksum(data), 0x220d);
}

TEST(WireFormat, ChecksumOfPacketWithChecksumIsZero) {
  std::uint8_t hdr[kIp4HdrBytes];
  Ip4Header ip;
  ip.total_len = kIp4HdrBytes;  // header-only packet so Parse's bound holds
  ip.proto = kIpProtoTcp;
  ip.src = MakeIp(10, 0, 0, 1);
  ip.dst = MakeIp(10, 0, 0, 2);
  ip.Serialize(hdr);
  EXPECT_EQ(InternetChecksum(hdr), 0);
  auto parsed = Ip4Header::Parse(std::span<const std::uint8_t>(hdr, sizeof(hdr)));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src, ip.src);
  // A flipped bit must be rejected.
  hdr[15] ^= 0x40;
  EXPECT_FALSE(Ip4Header::Parse(std::span<const std::uint8_t>(hdr, sizeof(hdr))).has_value());
}

TEST(WireFormat, EthRoundTrip) {
  EthHeader eth;
  eth.dst = uknetdev::MacAddr{{1, 2, 3, 4, 5, 6}};
  eth.src = uknetdev::MacAddr{{7, 8, 9, 10, 11, 12}};
  eth.ethertype = kEthTypeIp4;
  std::uint8_t buf[kEthHdrBytes];
  eth.Serialize(buf);
  EthHeader back = EthHeader::Parse(std::span<const std::uint8_t>(buf, sizeof(buf)));
  EXPECT_EQ(back.dst, eth.dst);
  EXPECT_EQ(back.src, eth.src);
  EXPECT_EQ(back.ethertype, kEthTypeIp4);
}

TEST(WireFormat, ArpRoundTrip) {
  ArpPacket arp;
  arp.oper = 2;
  arp.sender_mac = uknetdev::MacAddr{{0xaa, 1, 2, 3, 4, 5}};
  arp.sender_ip = MakeIp(192, 168, 1, 1);
  arp.target_ip = MakeIp(192, 168, 1, 2);
  std::uint8_t buf[kArpBytes];
  arp.Serialize(buf);
  auto back = ArpPacket::Parse(std::span<const std::uint8_t>(buf, sizeof(buf)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->oper, 2);
  EXPECT_EQ(back->sender_ip, arp.sender_ip);
  EXPECT_EQ(back->sender_mac, arp.sender_mac);
}

TEST(WireFormat, UdpChecksumVerification) {
  std::uint8_t payload[] = {'h', 'i'};
  std::vector<std::uint8_t> dgram(kUdpHdrBytes + 2);
  UdpHeader udp;
  udp.src_port = 1234;
  udp.dst_port = 5678;
  std::memcpy(dgram.data() + kUdpHdrBytes, payload, 2);
  udp.Serialize(dgram.data(), MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), payload);
  auto ok = UdpHeader::Parse(dgram, MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->src_port, 1234);
  dgram[9] ^= 1;  // corrupt payload
  EXPECT_FALSE(
      UdpHeader::Parse(dgram, MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2)).has_value());
}

TEST(WireFormat, TcpChecksumVerification) {
  std::uint8_t payload[] = {1, 2, 3};
  std::vector<std::uint8_t> seg(kTcpHdrBytes + 3);
  TcpHeader tcp;
  tcp.src_port = 80;
  tcp.dst_port = 45000;
  tcp.seq = 1000;
  tcp.ack = 2000;
  tcp.flags = kTcpAck | kTcpPsh;
  tcp.window = 65535;
  std::memcpy(seg.data() + kTcpHdrBytes, payload, 3);
  tcp.Serialize(seg.data(), MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), payload);
  std::size_t hlen = 0;
  auto ok = TcpHeader::Parse(seg, MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), &hlen);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(hlen, kTcpHdrBytes);
  EXPECT_EQ(ok->seq, 1000u);
  EXPECT_EQ(ok->flags, kTcpAck | kTcpPsh);
  seg[21] ^= 1;  // corrupt a payload byte
  EXPECT_FALSE(
      TcpHeader::Parse(seg, MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), &hlen).has_value());
}

TEST(WireFormat, SeqArithmeticWraps) {
  EXPECT_TRUE(SeqLt(0xfffffff0u, 0x10u));  // wrapped comparison
  EXPECT_FALSE(SeqLt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(SeqLe(5u, 5u));
}

// ---- two hosts over a wire (fixtures: net_harness.h) -------------------------------

TEST_F(TwoHostTest, InterfacesComeUp) {
  ASSERT_NE(a_.netif, nullptr);
  ASSERT_NE(b_.netif, nullptr);
  EXPECT_EQ(a_.netif->ip(), MakeIp(10, 0, 0, 1));
}

TEST_F(TwoHostTest, ArpResolutionViaRequestReply) {
  // First ping triggers ARP; the reply releases the parked packet.
  ASSERT_TRUE(a_.stack->Ping(MakeIp(10, 0, 0, 2), 1));
  EXPECT_TRUE(PumpUntil([&] { return a_.stack->pings_answered() == 1; }));
  EXPECT_GE(a_.netif->if_stats().arp_requests, 1u);
  EXPECT_GE(b_.netif->if_stats().arp_replies, 1u);
}

TEST_F(TwoHostTest, PingStorm) {
  for (std::uint16_t i = 0; i < 20; ++i) {
    a_.stack->Ping(MakeIp(10, 0, 0, 2), i);
    a_.stack->Poll();
    b_.stack->Poll();
  }
  EXPECT_TRUE(PumpUntil([&] { return a_.stack->pings_answered() >= 19; }));
}

TEST_F(TwoHostTest, UdpDatagramDelivery) {
  auto server = b_.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(53)));
  auto client = a_.stack->UdpOpen();
  std::uint8_t query[] = {'d', 'n', 's', '?'};
  EXPECT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 53, query), 4);
  ASSERT_TRUE(PumpUntil([&] { return server->readable(); }));
  auto dgram = server->RecvFrom();
  ASSERT_TRUE(dgram.has_value());
  EXPECT_EQ(dgram->payload.size(), 4u);
  EXPECT_EQ(dgram->src_ip, MakeIp(10, 0, 0, 1));
  // Reply path.
  std::uint8_t resp[] = {'o', 'k'};
  server->SendTo(dgram->src_ip, dgram->src_port, resp);
  ASSERT_TRUE(PumpUntil([&] { return client->readable(); }));
  auto back = client->RecvFrom();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload[0], 'o');
}

TEST_F(TwoHostTest, ArpFlushSendsParkedPacketsAsOneBatch) {
  auto server = b_.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(7000)));
  auto client = a_.stack->UdpOpen();
  // Cold ARP cache: the first sends park whole netbufs behind resolution
  // (bounded at 8); the ARP reply must flush them in a single batch.
  constexpr std::size_t kParked = 5;
  for (std::size_t i = 0; i < kParked; ++i) {
    std::uint8_t msg[4] = {'a', 'r', 'p', static_cast<std::uint8_t>(i)};
    ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 7000, msg), 4);
  }
  ASSERT_TRUE(PumpUntil([&] { return server->queued() >= kParked; }));
  for (std::size_t i = 0; i < kParked; ++i) {
    auto d = server->RecvFrom();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->payload[3], static_cast<std::uint8_t>(i));  // order preserved
  }
  EXPECT_EQ(a_.netif->if_stats().ip_tx, kParked);
  EXPECT_EQ(a_.netif->if_stats().pending_dropped, 0u);
}

TEST_F(TwoHostTest, BatchedUdpEchoZeroCopy) {
  auto server = b_.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(9000)));
  auto client = a_.stack->UdpOpen();
  // Warm the ARP caches so the burst is not throttled by resolution.
  ASSERT_TRUE(a_.stack->Ping(MakeIp(10, 0, 0, 2), 1));
  ASSERT_TRUE(PumpUntil([&] { return a_.stack->pings_answered() == 1; }));

  constexpr std::size_t kBurst = 16;
  for (std::size_t i = 0; i < kBurst; ++i) {
    std::uint8_t msg[8] = {'b', 'a', 't', 'c', 'h', static_cast<std::uint8_t>(i),
                           0,   0};
    ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 9000, msg), 8);
  }
  ASSERT_TRUE(PumpUntil([&] { return server->queued() >= kBurst; }));

  // Zero-copy batch view: every datagram is a view into a retained driver
  // netbuf, surfaced in send order without copying.
  const DatagramView* views[kBurst];
  ASSERT_EQ(server->PeekBatch(views, kBurst), kBurst);
  for (std::size_t i = 0; i < kBurst; ++i) {
    ASSERT_EQ(views[i]->len, 8u);
    EXPECT_EQ(views[i]->data[5], static_cast<std::uint8_t>(i));
    EXPECT_NE(views[i]->nb, nullptr);
    EXPECT_EQ(views[i]->src_ip, MakeIp(10, 0, 0, 1));
  }
  // Echo the whole batch straight out of the views, then release in one go.
  for (std::size_t i = 0; i < kBurst; ++i) {
    ASSERT_EQ(server->SendTo(views[i]->src_ip, views[i]->src_port,
                             std::span(views[i]->data, views[i]->len)),
              8);
  }
  server->ReleaseFront(kBurst);
  EXPECT_EQ(server->queued(), 0u);

  ASSERT_TRUE(PumpUntil([&] { return client->queued() >= kBurst; }));
  std::uint8_t out[8];
  for (std::size_t i = 0; i < kBurst; ++i) {
    Ip4Addr src = 0;
    std::uint16_t port = 0;
    ASSERT_EQ(client->RecvInto(out, &src, &port), 8);
    EXPECT_EQ(out[5], static_cast<std::uint8_t>(i));
    EXPECT_EQ(src, MakeIp(10, 0, 0, 2));
    EXPECT_EQ(port, 9000);
  }
  EXPECT_EQ(client->RecvInto(out, nullptr, nullptr),
            ukarch::Raw(ukarch::Status::kAgain));

  // Steady-state zero-alloc gate (Fig 18 regression): a second, warm echo
  // round must churn exactly one TX netbuf per reply and one RX ring refill
  // per datagram on the server — and never touch the guest heap.
  ZeroAllocGuard server_guard({b_.netif->tx_pool(0), b_.netif->rx_pool(0)},
                              b_.alloc.get());
  for (std::size_t i = 0; i < kBurst; ++i) {
    std::uint8_t msg[8] = {'r', 'o', 'u', 'n', 'd', '2', static_cast<std::uint8_t>(i), 0};
    ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 9000, msg), 8);
  }
  ASSERT_TRUE(PumpUntil([&] { return server->queued() >= kBurst; }));
  const DatagramView* round2[kBurst];
  ASSERT_EQ(server->PeekBatch(round2, kBurst), kBurst);
  for (std::size_t i = 0; i < kBurst; ++i) {
    ASSERT_EQ(server->SendTo(round2[i]->src_ip, round2[i]->src_port,
                             std::span(round2[i]->data, round2[i]->len)),
              8);
  }
  server->ReleaseFront(kBurst);
  ASSERT_TRUE(PumpUntil([&] { return client->queued() >= kBurst; }));
  EXPECT_EQ(server_guard.pool_allocs(0), kBurst);  // one TX buf per reply, exact
  EXPECT_EQ(server_guard.pool_allocs(1), kBurst);  // one RX refill per datagram
  server_guard.ExpectHeapSteady("udp echo steady state");
}

// Steady-state TCP echo: every app byte rides pool netbufs written once; the
// guest heap is never touched per segment, and once everything is ACKed all
// retained TX buffers are back in their pools (no leak, no hidden churn).
TEST_F(TwoHostTest, TcpEchoSteadyStateZeroAlloc) {
  auto listener = b_.stack->TcpListen(4242);
  auto client = a_.stack->TcpConnect(MakeIp(10, 0, 0, 2), 4242);
  ASSERT_TRUE(PumpUntil([&] { return client->connected() && listener->backlog() > 0; }));
  auto server_sock = listener->Accept();

  std::vector<std::uint8_t> chunk(1024);
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = static_cast<std::uint8_t>(i * 11);
  }
  std::uint8_t buf[2048];
  auto echo_rounds = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      ASSERT_EQ(client->Send(chunk), static_cast<std::int64_t>(chunk.size()));
      std::size_t echoed = 0;
      ASSERT_TRUE(PumpUntil([&] {
        std::int64_t n = server_sock->Recv(buf);
        if (n > 0) {
          server_sock->Send(std::span(buf, static_cast<std::size_t>(n)));
        }
        std::int64_t e = client->Recv(buf);
        if (e > 0) {
          echoed += static_cast<std::size_t>(e);
        }
        return echoed >= chunk.size();
      }));
    }
  };
  echo_rounds(4);  // warm-up: ARP resolved, windows open, pools primed

  ZeroAllocGuard client_guard({a_.netif->tx_pool(0)}, a_.alloc.get());
  ZeroAllocGuard server_guard({b_.netif->tx_pool(0)}, b_.alloc.get());
  std::uint64_t client_segs_before = client->tcp_stats().segments_sent;
  echo_rounds(8);
  // The guest heap saw zero allocations across 8 echoed KB each way.
  client_guard.ExpectHeapSteady("tcp echo client steady state");
  server_guard.ExpectHeapSteady("tcp echo server steady state");
  // TX pool churn tracks segments (data + ACKs), not bytes — and never more.
  EXPECT_GT(client->tcp_stats().segments_sent, client_segs_before);
  EXPECT_LE(client_guard.pool_allocs(0),
            client->tcp_stats().segments_sent - client_segs_before);
  // Everything ACKed: every retained netbuf is back in its pool.
  EXPECT_TRUE(PumpUntil([&] {
    return a_.netif->tx_pool(0)->available() == a_.netif->tx_pool(0)->capacity();
  }));
  EXPECT_EQ(b_.netif->tx_pool(0)->available(), b_.netif->tx_pool(0)->capacity());
  EXPECT_EQ(client->tcp_stats().retransmissions, 0u);  // clean wire: zero re-bursts
}

TEST_F(TwoHostTest, UdpPortCollisionRejected) {
  auto s1 = b_.stack->UdpOpen();
  ASSERT_TRUE(Ok(s1->Bind(1000)));
  auto s2 = b_.stack->UdpOpen();
  EXPECT_EQ(s2->Bind(1000), ukarch::Status::kAddrInUse);
}

TEST_F(TwoHostTest, TcpHandshake) {
  auto listener = b_.stack->TcpListen(80);
  ASSERT_NE(listener, nullptr);
  auto client = a_.stack->TcpConnect(MakeIp(10, 0, 0, 2), 80);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->state(), TcpState::kSynSent);
  ASSERT_TRUE(PumpUntil([&] { return client->connected(); }));
  auto server_sock = listener->Accept();
  ASSERT_NE(server_sock, nullptr);
  EXPECT_EQ(server_sock->state(), TcpState::kEstablished);
  EXPECT_EQ(server_sock->remote_ip(), MakeIp(10, 0, 0, 1));
}

TEST_F(TwoHostTest, TcpDataBothDirections) {
  auto listener = b_.stack->TcpListen(7);
  auto client = a_.stack->TcpConnect(MakeIp(10, 0, 0, 2), 7);
  ASSERT_TRUE(PumpUntil([&] { return client->connected() && listener->backlog() > 0; }));
  auto server_sock = listener->Accept();

  std::string msg = "GET / HTTP/1.1\r\n\r\n";
  EXPECT_EQ(client->Send(std::span(reinterpret_cast<const std::uint8_t*>(msg.data()),
                                   msg.size())),
            static_cast<std::int64_t>(msg.size()));
  ASSERT_TRUE(PumpUntil([&] { return server_sock->readable(); }));
  std::uint8_t buf[64];
  std::int64_t n = server_sock->Recv(buf);
  ASSERT_EQ(n, static_cast<std::int64_t>(msg.size()));
  EXPECT_EQ(std::string(buf, buf + n), msg);

  std::string reply = "HTTP/1.1 200 OK\r\n\r\n";
  server_sock->Send(std::span(reinterpret_cast<const std::uint8_t*>(reply.data()),
                              reply.size()));
  ASSERT_TRUE(PumpUntil([&] { return client->readable(); }));
  n = client->Recv(buf);
  EXPECT_EQ(std::string(buf, buf + n), reply);
}

TEST_F(TwoHostTest, TcpBulkTransferSegmentsAndReassembles) {
  auto listener = b_.stack->TcpListen(9000);
  auto client = a_.stack->TcpConnect(MakeIp(10, 0, 0, 2), 9000);
  ASSERT_TRUE(PumpUntil([&] { return client->connected() && listener->backlog() > 0; }));
  auto server_sock = listener->Accept();

  // 256 KB: forces MSS segmentation, windowing, and multiple send calls.
  std::vector<std::uint8_t> data(256 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  std::size_t sent = 0;
  std::vector<std::uint8_t> received;
  received.reserve(data.size());
  std::uint8_t buf[4096];
  for (int rounds = 0; rounds < 200000 && received.size() < data.size(); ++rounds) {
    if (sent < data.size()) {
      std::int64_t n = client->Send(
          std::span(data.data() + sent, data.size() - sent));
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
      }
    }
    a_.stack->Poll();
    b_.stack->Poll();
    std::int64_t r = server_sock->Recv(buf);
    if (r > 0) {
      received.insert(received.end(), buf, buf + r);
    }
  }
  ASSERT_EQ(received.size(), data.size());
  EXPECT_EQ(received, data);
  EXPECT_GT(client->tcp_stats().segments_sent, data.size() / TcpSocket::kMss);
}

TEST_F(TwoHostTest, TcpGracefulClose) {
  auto listener = b_.stack->TcpListen(21);
  auto client = a_.stack->TcpConnect(MakeIp(10, 0, 0, 2), 21);
  ASSERT_TRUE(PumpUntil([&] { return client->connected() && listener->backlog() > 0; }));
  auto server_sock = listener->Accept();

  client->Close();
  ASSERT_TRUE(PumpUntil([&] { return server_sock->readable(); }));
  std::uint8_t buf[8];
  EXPECT_EQ(server_sock->Recv(buf), 0);  // EOF
  EXPECT_EQ(server_sock->state(), TcpState::kCloseWait);
  server_sock->Close();
  ASSERT_TRUE(PumpUntil([&] {
    return client->state() == TcpState::kTimeWait ||
           client->state() == TcpState::kClosed;
  }));
}

TEST_F(TwoHostTest, ConnectToClosedPortGetsRst) {
  auto client = a_.stack->TcpConnect(MakeIp(10, 0, 0, 2), 12345);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(PumpUntil([&] { return client->failed(); }));
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_GE(b_.stack->stats().rst_sent, 1u);
}

TEST_F(TwoHostTest, NoListenerUdpDropCounted) {
  auto client = a_.stack->UdpOpen();
  std::uint8_t data[] = {1};
  client->SendTo(MakeIp(10, 0, 0, 2), 9999, data);
  PumpUntil([&] { return b_.stack->stats().no_socket_drops > 0; }, 200);
  EXPECT_GE(b_.stack->stats().no_socket_drops, 1u);
}


TEST_F(LossyTest, TcpRecoversFromLoss) {
  a_->netif->AddArpEntry(MakeIp(10, 0, 0, 2), b_->nic->mac());
  b_->netif->AddArpEntry(MakeIp(10, 0, 0, 1), a_->nic->mac());
  auto listener = b_->stack->TcpListen(80);
  auto client = a_->stack->TcpConnect(MakeIp(10, 0, 0, 2), 80);

  std::vector<std::uint8_t> data(64 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i % 253);
  }
  std::size_t sent = 0;
  std::vector<std::uint8_t> received;
  std::shared_ptr<TcpSocket> server_sock;
  std::uint8_t buf[4096];
  for (int rounds = 0; rounds < 400000 && received.size() < data.size(); ++rounds) {
    clock_.Charge(2000);  // advance virtual time so RTOs can fire
    if (client->connected() && sent < data.size()) {
      std::int64_t n = client->Send(std::span(data.data() + sent, data.size() - sent));
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
      }
    }
    a_->stack->Poll();
    b_->stack->Poll();
    if (server_sock == nullptr) {
      server_sock = listener->Accept();
    } else {
      std::int64_t r = server_sock->Recv(buf);
      if (r > 0) {
        received.insert(received.end(), buf, buf + r);
      }
    }
  }
  ASSERT_EQ(received.size(), data.size());
  EXPECT_EQ(received, data);
  EXPECT_GT(client->tcp_stats().retransmissions, 0u);
}

// ---- parser hardening ---------------------------------------------------------------

TEST(WireFormatHardening, TruncatedHeadersRejected) {
  std::uint8_t junk[64] = {0};
  // Ethernet: short frames parse to a zeroed header (caller length-checks).
  EthHeader eth = EthHeader::Parse(std::span<const std::uint8_t>(junk, 5));
  EXPECT_EQ(eth.ethertype, 0);
  // ARP: anything under the full 28 bytes is rejected.
  junk[0] = 0;
  junk[1] = 1;  // htype
  EXPECT_FALSE(ArpPacket::Parse(std::span<const std::uint8_t>(junk, kArpBytes - 1))
                   .has_value());
  // IPv4: under 20 bytes is rejected.
  junk[0] = 0x45;
  EXPECT_FALSE(
      Ip4Header::Parse(std::span<const std::uint8_t>(junk, kIp4HdrBytes - 1)).has_value());
  // TCP: under 20 bytes is rejected.
  std::size_t hlen = 0;
  EXPECT_FALSE(TcpHeader::Parse(std::span<const std::uint8_t>(junk, kTcpHdrBytes - 1),
                                MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), &hlen)
                   .has_value());
  // UDP: under 8 bytes is rejected.
  EXPECT_FALSE(UdpHeader::Parse(std::span<const std::uint8_t>(junk, kUdpHdrBytes - 1),
                                MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2))
                   .has_value());
}

TEST(WireFormatHardening, IhlOutOfRangeRejected) {
  std::uint8_t hdr[60] = {0};
  Ip4Header ip;
  ip.total_len = kIp4HdrBytes;
  ip.proto = kIpProtoUdp;
  ip.src = MakeIp(10, 0, 0, 1);
  ip.dst = MakeIp(10, 0, 0, 2);
  ip.Serialize(hdr);
  // IHL below 5: header length under the fixed part.
  hdr[0] = 0x44;
  EXPECT_FALSE(Ip4Header::Parse(std::span<const std::uint8_t>(hdr, 20)).has_value());
  // IHL claiming 60 bytes of a 20-byte packet.
  hdr[0] = 0x4f;
  EXPECT_FALSE(Ip4Header::Parse(std::span<const std::uint8_t>(hdr, 20)).has_value());
  // Wrong version.
  hdr[0] = 0x65;
  EXPECT_FALSE(Ip4Header::Parse(std::span<const std::uint8_t>(hdr, 20)).has_value());
}

TEST(WireFormatHardening, LyingUdpLengthRejected) {
  std::uint8_t payload[] = {1, 2, 3, 4};
  std::vector<std::uint8_t> dgram(kUdpHdrBytes + sizeof(payload));
  UdpHeader udp;
  udp.src_port = 1;
  udp.dst_port = 2;
  std::memcpy(dgram.data() + kUdpHdrBytes, payload, sizeof(payload));
  udp.Serialize(dgram.data(), MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), payload);
  ASSERT_TRUE(UdpHeader::Parse(dgram, MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2))
                  .has_value());
  // Length field beyond the datagram: a slow read past the buffer otherwise.
  dgram[4] = 0x00;
  dgram[5] = 0xc8;  // claims 200 bytes
  EXPECT_FALSE(UdpHeader::Parse(dgram, MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2))
                   .has_value());
  // Length field under the header size.
  dgram[4] = 0x00;
  dgram[5] = 0x04;
  EXPECT_FALSE(UdpHeader::Parse(dgram, MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2))
                   .has_value());
}

TEST(WireFormatHardening, TcpDataOffsetOutOfRangeRejected) {
  std::uint8_t seg[kTcpHdrBytes] = {0};
  std::size_t hlen = 0;
  // Data offset below 5 words.
  seg[12] = 4 << 4;
  EXPECT_FALSE(TcpHeader::Parse(std::span<const std::uint8_t>(seg, sizeof(seg)),
                                MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), &hlen)
                   .has_value());
  // Data offset past the segment end.
  seg[12] = 15 << 4;
  EXPECT_FALSE(TcpHeader::Parse(std::span<const std::uint8_t>(seg, sizeof(seg)),
                                MakeIp(10, 0, 0, 1), MakeIp(10, 0, 0, 2), &hlen)
                   .has_value());
}

TEST(WireFormatHardening, ChecksumCarryBoundaries) {
  // End-around carry: 0xffff + 0xffff folds twice before complementing.
  std::uint8_t all_ones[] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_EQ(InternetChecksum(all_ones), 0x0000);
  // Empty input: ~0 truncated.
  EXPECT_EQ(InternetChecksum(std::span<const std::uint8_t>{}), 0xffff);
  // Odd-length tail is padded on the right.
  std::uint8_t odd[] = {0x12};
  EXPECT_EQ(InternetChecksum(odd), 0xedff);
  // Initial value folds in (pseudo-header path).
  std::uint8_t zero2[] = {0x00, 0x00};
  EXPECT_EQ(InternetChecksum(zero2, 0x1ffff), static_cast<std::uint16_t>(~0x0001));
}

// ---- raw-frame peer (fixtures: net_harness.h) ---------------------------------------

// Regression for the FIN-in-flight accounting bug: the old deque-based
// Output() computed |unsent| as send_buf_.size() - in_flight where in_flight
// included the FIN's sequence slot; a partial ACK after Close() underflowed
// the subtraction (~4G "unsent") and EmitData read out of bounds. With
// per-segment sequence accounting the same exchange must stay exact — and
// the go-back-N retransmit must re-send byte-identical payloads.
TEST_F(RawPeerTest, PartialAckAfterFinInFlightStaysExact) {
  host_.stack->rto_cycles = 10'000;
  auto client = host_.stack->TcpConnect(peer_.ip, 80);
  ASSERT_NE(client, nullptr);
  std::uint32_t iss = Handshake(client, 80);

  // 3000 bytes => segments of 1400/1400/200, then a FIN right behind them.
  std::vector<std::uint8_t> data(3000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i % 251);
  }
  ASSERT_EQ(client->Send(data), 3000);
  client->Close();
  ASSERT_EQ(client->state(), TcpState::kFinWait1);
  Pump();
  ASSERT_GE(peer_.segs.size(), 6u);  // SYN, 3 data, FIN (+handshake ACK)
  const auto& fin = peer_.segs.back();
  EXPECT_NE(fin.hdr.flags & kTcpFin, 0);
  EXPECT_EQ(fin.hdr.seq, iss + 3001);

  // Partial ACK covering only the first segment, with the FIN in flight —
  // the old code underflowed here.
  std::size_t tx_allocs_before = host_.netif->tx_pool()->total_allocs();
  peer_.SendTcp(80, client->local_port(), kTcpAck, 1001, iss + 1401, 65535);
  Pump();
  EXPECT_EQ(client->state(), TcpState::kFinWait1);

  // Withhold further ACKs; the RTO must re-burst the two remaining retained
  // segments byte-for-byte, with zero TX pool churn (no new allocations).
  peer_.segs.clear();
  clock_.Charge(20'000);
  Pump();
  std::vector<std::uint8_t> resent;
  for (const auto& s : peer_.segs) {
    resent.insert(resent.end(), s.payload.begin(), s.payload.end());
  }
  ASSERT_EQ(resent.size(), 1600u);
  EXPECT_TRUE(std::equal(resent.begin(), resent.end(), data.begin() + 1400));
  EXPECT_EQ(peer_.segs.front().hdr.seq, iss + 1401);
  EXPECT_EQ(host_.netif->tx_pool()->total_allocs(), tx_allocs_before);
  EXPECT_GE(client->tcp_stats().retransmissions, 1u);

  // ACK everything including the FIN slot: teardown proceeds.
  peer_.SendTcp(80, client->local_port(), kTcpAck, 1001, iss + 3002, 65535);
  Pump();
  EXPECT_EQ(client->state(), TcpState::kFinWait2);
  EXPECT_EQ(peer_.rsts, 0u);
}

// Triple duplicate ACKs must re-send the first unacked retained segment with
// no payload copy and no TX pool allocation.
TEST_F(RawPeerTest, FastRetransmitReusesRetainedNetbuf) {
  auto client = host_.stack->TcpConnect(peer_.ip, 81);
  ASSERT_NE(client, nullptr);
  std::uint32_t iss = Handshake(client, 81);

  std::vector<std::uint8_t> data(2800);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>((i * 13) % 256);
  }
  ASSERT_EQ(client->Send(data), 2800);
  Pump();
  peer_.segs.clear();
  std::size_t tx_allocs_before = host_.netif->tx_pool()->total_allocs();

  // Three dup ACKs at snd_una (nothing new acknowledged, no payload).
  for (int i = 0; i < 3; ++i) {
    peer_.SendTcp(81, client->local_port(), kTcpAck, 1001, iss + 1, 65535);
    Pump(1);
  }
  peer_.Poll();
  ASSERT_FALSE(peer_.segs.empty());
  const auto& rexmit = peer_.segs.back();
  EXPECT_EQ(rexmit.hdr.seq, iss + 1);
  ASSERT_EQ(rexmit.payload.size(), 1400u);
  EXPECT_TRUE(std::equal(rexmit.payload.begin(), rexmit.payload.end(), data.begin()));
  EXPECT_EQ(host_.netif->tx_pool()->total_allocs(), tx_allocs_before);
  EXPECT_EQ(client->tcp_stats().retransmissions, 1u);
}

// A retransmitted FIN (our final ACK was lost) must find the TIME_WAIT
// connection and get a fresh ACK — not a RST — until the 2MSL-equivalent
// poll budget drains the connection.
TEST_F(RawPeerTest, TimeWaitReAcksRetransmittedFin) {
  host_.stack->time_wait_poll_budget = 16;
  auto client = host_.stack->TcpConnect(peer_.ip, 82);
  ASSERT_NE(client, nullptr);
  std::uint32_t iss = Handshake(client, 82);

  // Host closes first: FIN at iss+1.
  client->Close();
  Pump();
  EXPECT_EQ(client->state(), TcpState::kFinWait1);
  peer_.SendTcp(82, client->local_port(), kTcpAck, 1001, iss + 2, 65535);
  Pump();
  EXPECT_EQ(client->state(), TcpState::kFinWait2);

  // Peer's FIN: host moves to TIME_WAIT and ACKs (ack = 1002).
  peer_.segs.clear();
  peer_.SendTcp(82, client->local_port(), kTcpFin | kTcpAck, 1001, iss + 2, 65535);
  Pump(2);
  EXPECT_EQ(client->state(), TcpState::kTimeWait);
  ASSERT_FALSE(peer_.segs.empty());
  EXPECT_EQ(peer_.segs.back().hdr.ack, 1002u);

  // Pretend that ACK was lost: the peer retransmits its FIN. The lingering
  // connection must re-ACK; before this fix the stack answered with a RST.
  peer_.segs.clear();
  peer_.SendTcp(82, client->local_port(), kTcpFin | kTcpAck, 1001, iss + 2, 65535);
  Pump(2);
  ASSERT_FALSE(peer_.segs.empty());
  EXPECT_EQ(peer_.segs.back().hdr.ack, 1002u);
  EXPECT_NE(peer_.segs.back().hdr.flags & kTcpAck, 0);
  EXPECT_EQ(peer_.rsts, 0u);
  EXPECT_EQ(host_.stack->stats().rst_sent, 0u);

  // After the budget drains, the key is reclaimed: a late FIN now draws the
  // no-connection RST (proving TIME_WAIT does not leak connections forever).
  for (int i = 0; i < 32; ++i) {
    host_.stack->Poll();
  }
  peer_.segs.clear();
  peer_.SendTcp(82, client->local_port(), kTcpFin | kTcpAck, 1001, iss + 2, 65535);
  Pump(2);
  EXPECT_GE(peer_.rsts, 1u);
  EXPECT_EQ(client->state(), TcpState::kTimeWait);  // socket object unchanged
}

// A RST that assassinates TIME_WAIT must reclaim the connection key, not
// leave a zombie kClosed entry blackholing the 4-tuple past the linger.
TEST_F(RawPeerTest, RstDuringTimeWaitReclaimsConnection) {
  auto client = host_.stack->TcpConnect(peer_.ip, 83);
  ASSERT_NE(client, nullptr);
  std::uint32_t iss = Handshake(client, 83);
  client->Close();
  Pump();
  peer_.SendTcp(83, client->local_port(), kTcpAck, 1001, iss + 2, 65535);
  Pump();
  peer_.SendTcp(83, client->local_port(), kTcpFin | kTcpAck, 1001, iss + 2, 65535);
  Pump(2);
  ASSERT_EQ(client->state(), TcpState::kTimeWait);

  peer_.SendTcp(83, client->local_port(), kTcpRst, 1002, iss + 2, 0);
  Pump(2);
  EXPECT_EQ(client->state(), TcpState::kClosed);
  EXPECT_TRUE(client->failed());
  // The tuple is free again: a stray segment now draws the no-connection RST
  // instead of being swallowed by a zombie map entry.
  peer_.SendTcp(83, client->local_port(), kTcpAck, 1002, iss + 2, 65535);
  Pump(2);
  EXPECT_GE(peer_.rsts, 1u);
}

// Aborting a connection with unacked data queued must hand every retained
// netbuf back to the TX pool and free the 4-tuple — a zombie would pin up
// to a full send buffer (~47 MSS buffers) until stack teardown.
TEST_F(RawPeerTest, RstReleasesRetainedSegmentsAndTuple) {
  auto client = host_.stack->TcpConnect(peer_.ip, 84);
  ASSERT_NE(client, nullptr);
  std::uint32_t iss = Handshake(client, 84);
  std::vector<std::uint8_t> data(8192, 0x77);
  ASSERT_EQ(client->Send(data), 8192);
  Pump();
  // 6 MSS segments retained and unacked.
  EXPECT_LT(host_.netif->tx_pool()->available(), host_.netif->tx_pool()->capacity());

  peer_.SendTcp(84, client->local_port(), kTcpRst, 1001, iss + 1, 0);
  Pump(2);
  EXPECT_TRUE(client->failed());
  EXPECT_EQ(client->state(), TcpState::kClosed);
  // Every TX buffer is back (transmissions complete synchronously here).
  EXPECT_EQ(host_.netif->tx_pool()->available(), host_.netif->tx_pool()->capacity());
  // The tuple is demuxable again: a stray segment draws the no-connection RST.
  peer_.SendTcp(84, client->local_port(), kTcpAck, 1001, iss + 1, 65535);
  Pump(2);
  EXPECT_GE(peer_.rsts, 1u);
}

// An application may keep its socket handle beyond the stack's life. The
// stack drains retained segments at destruction, so dropping the handle
// afterwards must not touch the (destroyed) netbuf pools — ASan guards this.
TEST(TcpLifetime, SocketHandleMayOutliveStack) {
  ukplat::Clock clock;
  ukplat::Wire wire(&clock);
  std::shared_ptr<TcpSocket> client;
  {
    Host host(&clock, &wire, 0, MakeIp(10, 0, 0, 1));
    RawPeer peer;
    peer.wire = &wire;
    peer.host_mac = host.nic->mac();
    peer.ip = MakeIp(10, 0, 0, 2);
    peer.host_ip = MakeIp(10, 0, 0, 1);
    host.netif->AddArpEntry(peer.ip, peer.mac);
    client = host.stack->TcpConnect(peer.ip, 90);
    ASSERT_NE(client, nullptr);
    host.stack->Poll();
    peer.Poll();
    ASSERT_FALSE(peer.segs.empty());
    std::uint32_t iss = peer.segs.back().hdr.seq;
    peer.SendTcp(90, client->local_port(), kTcpSyn | kTcpAck, 1000, iss + 1, 65535);
    host.stack->Poll();
    ASSERT_TRUE(client->connected());
    // Data that is never ACKed: the retransmission queue retains netbufs.
    std::vector<std::uint8_t> data(4096, 0xab);
    ASSERT_EQ(client->Send(data), 4096);
  }  // stack, interfaces and pools die here with segments still queued
  EXPECT_EQ(client.use_count(), 1);
  client.reset();  // must be a no-op on pool memory
}

// ---- RX hardening through the interface --------------------------------------------

// RawRxTest (net_harness.h): raw L3 injection through the interface.

// Packets carrying IP options (IHL > 5) must deliver exactly the UDP payload:
// before the fix the L4 slice started at the fixed 20-byte offset and option
// bytes leaked into the datagram.
TEST_F(RawRxTest, IpOptionsDoNotLeakIntoUdpPayload) {
  auto sock = host_.stack->UdpOpen();
  ASSERT_TRUE(Ok(sock->Bind(5000)));

  const std::uint8_t payload[] = {'o', 'p', 't', 's'};
  constexpr std::size_t kIhlBytes = 24;  // IHL=6: one 4-byte options word
  std::vector<std::uint8_t> l3(kIhlBytes + kUdpHdrBytes + sizeof(payload), 0);
  l3[0] = 0x46;  // version 4, IHL 6
  netharness::PutU16(l3.data() + 2, static_cast<std::uint16_t>(l3.size()));
  netharness::PutU16(l3.data() + 4, 7);       // id
  netharness::PutU16(l3.data() + 6, 0x4000);  // DF
  l3[8] = 64;                          // ttl
  l3[9] = kIpProtoUdp;
  std::uint32_t src = MakeIp(10, 0, 0, 2);
  std::uint32_t dst = MakeIp(10, 0, 0, 1);
  l3[12] = 10; l3[13] = 0; l3[14] = 0; l3[15] = 2;
  l3[16] = 10; l3[17] = 0; l3[18] = 0; l3[19] = 1;
  l3[20] = 0x01; l3[21] = 0x01; l3[22] = 0x01; l3[23] = 0x00;  // NOP NOP NOP EOL
  netharness::PutU16(l3.data() + 10,
              InternetChecksum(std::span<const std::uint8_t>(l3.data(), kIhlBytes)));
  std::memcpy(l3.data() + kIhlBytes + kUdpHdrBytes, payload, sizeof(payload));
  UdpHeader udp;
  udp.src_port = 4000;
  udp.dst_port = 5000;
  udp.Serialize(l3.data() + kIhlBytes, src, dst, payload);

  InjectIp(l3);
  for (int i = 0; i < 8 && !sock->readable(); ++i) {
    host_.stack->Poll();
  }
  auto dgram = sock->RecvFrom();
  ASSERT_TRUE(dgram.has_value());
  ASSERT_EQ(dgram->payload.size(), sizeof(payload));  // no option bytes leaked
  EXPECT_EQ(std::memcmp(dgram->payload.data(), payload, sizeof(payload)), 0);
  EXPECT_EQ(dgram->src_port, 4000);
}

// Malformed packets must be rejected cleanly: nullopt all the way down, the
// right drop counter for bad IP headers, and no drift anywhere else.
TEST_F(RawRxTest, MalformedPacketsRejectedWithoutStatDrift) {
  auto sock = host_.stack->UdpOpen();
  ASSERT_TRUE(Ok(sock->Bind(5000)));

  // 1) Truncated Ethernet frame (below the 14-byte header).
  wire_.Send(1, std::vector<std::uint8_t>{0xff, 0xff, 0xff});
  // 2) IP header with a flipped checksum bit.
  {
    std::vector<std::uint8_t> l3(kIp4HdrBytes);
    Ip4Header ip;
    ip.total_len = kIp4HdrBytes;
    ip.proto = kIpProtoUdp;
    ip.src = MakeIp(10, 0, 0, 2);
    ip.dst = MakeIp(10, 0, 0, 1);
    ip.Serialize(l3.data());
    l3[15] ^= 0x40;
    InjectIp(l3);
  }
  // 3) Truncated IP header.
  {
    std::vector<std::uint8_t> l3 = {0x45, 0x00, 0x00};
    InjectIp(l3);
  }
  // 4) Valid IP, UDP length field lying beyond the datagram.
  {
    std::vector<std::uint8_t> l3(kIp4HdrBytes + kUdpHdrBytes + 2, 0);
    Ip4Header ip;
    ip.total_len = static_cast<std::uint16_t>(l3.size());
    ip.proto = kIpProtoUdp;
    ip.src = MakeIp(10, 0, 0, 2);
    ip.dst = MakeIp(10, 0, 0, 1);
    ip.Serialize(l3.data());
    netharness::PutU16(l3.data() + kIp4HdrBytes, 4000);
    netharness::PutU16(l3.data() + kIp4HdrBytes + 2, 5000);
    netharness::PutU16(l3.data() + kIp4HdrBytes + 4, 200);  // lying length
    InjectIp(l3);
  }
  // 5) Valid IP, truncated TCP header.
  {
    std::vector<std::uint8_t> l3(kIp4HdrBytes + 6, 0);
    Ip4Header ip;
    ip.total_len = static_cast<std::uint16_t>(l3.size());
    ip.proto = kIpProtoTcp;
    ip.src = MakeIp(10, 0, 0, 2);
    ip.dst = MakeIp(10, 0, 0, 1);
    ip.Serialize(l3.data());
    InjectIp(l3);
  }
  for (int i = 0; i < 8; ++i) {
    host_.stack->Poll();
  }

  const auto& st = host_.stack->stats();
  EXPECT_EQ(st.udp_rx, 0u);
  EXPECT_EQ(st.tcp_rx, 0u);
  EXPECT_EQ(st.icmp_rx, 0u);
  EXPECT_EQ(st.no_socket_drops, 0u);
  EXPECT_EQ(st.rst_sent, 0u);
  EXPECT_FALSE(sock->readable());
  // Cases 2 and 3 are IP header parse failures; the interface counts exactly
  // those (truncated Ethernet never reaches IP, lying-UDP/truncated-TCP fail
  // quietly at L4).
  EXPECT_EQ(host_.netif->if_stats().rx_checksum_drops, 2u);
  EXPECT_EQ(host_.netif->if_stats().ip_rx, 2u);  // the two L4-bad packets
}

}  // namespace
