// Tests for the POSIX layer: syscall table data, shim dispatch modes and
// costs (Table 1 substrate), fd table, and PosixApi over VFS + sockets.
#include <gtest/gtest.h>

#include <cstring>

#include "env/testbed.h"
#include "posix/api.h"
#include "posix/syscalls.h"

namespace {

using namespace posix;

TEST(SyscallTable, KnownNumbers) {
  EXPECT_EQ(SyscallName(0), "read");
  EXPECT_EQ(SyscallName(1), "write");
  EXPECT_EQ(SyscallName(41), "socket");
  EXPECT_EQ(SyscallName(313), "finit_module");
  EXPECT_EQ(SyscallName(314), "");
  EXPECT_EQ(SyscallNumber("epoll_wait"), 232);
  EXPECT_EQ(SyscallNumber("nonexistent_call"), -1);
}

TEST(SyscallTable, SupportedCountMatchesPaper) {
  // §4.1: "we have implementations for 146 syscalls".
  EXPECT_NEAR(static_cast<double>(SupportedSyscalls().size()), 146.0, 6.0);
  EXPECT_TRUE(SupportedSyscalls().contains(SyscallNumber("read")));
  EXPECT_TRUE(SupportedSyscalls().contains(SyscallNumber("socket")));
  EXPECT_FALSE(SupportedSyscalls().contains(SyscallNumber("io_submit")));
  EXPECT_FALSE(SupportedSyscalls().contains(SyscallNumber("finit_module")));
}

TEST(Shim, DispatchCostLadderMatchesTable1) {
  ukplat::CostModel m;
  // function call < shim < binary-compat < trap-nomitig < trap.
  std::uint64_t direct = SyscallShim::EntryCost(DispatchMode::kDirectCall, m);
  std::uint64_t shim = SyscallShim::EntryCost(DispatchMode::kShimTable, m);
  std::uint64_t compat = SyscallShim::EntryCost(DispatchMode::kBinaryCompat, m);
  std::uint64_t fast = SyscallShim::EntryCost(DispatchMode::kLinuxTrapFast, m);
  std::uint64_t full = SyscallShim::EntryCost(DispatchMode::kLinuxTrap, m);
  EXPECT_LT(direct, shim);
  EXPECT_LT(shim, compat);
  EXPECT_LT(compat, fast);
  EXPECT_LT(fast, full);
  EXPECT_EQ(direct, 4u);
  EXPECT_EQ(compat, 84u);
  EXPECT_EQ(fast, 154u);
  EXPECT_EQ(full, 222u);
}

TEST(Shim, ChargesPerCallAndStubsEnosys) {
  ukplat::Clock clock;
  SyscallShim shim(&clock, DispatchMode::kLinuxTrap);
  shim.Register(SyscallNumber("getpid"), [](const SyscallArgs&) { return 42; });
  EXPECT_EQ(shim.Call(SyscallNumber("getpid")), 42);
  EXPECT_EQ(clock.cycles(), 222u);
  // Unregistered syscall: automatic -ENOSYS (§4.1).
  EXPECT_EQ(shim.Call(SyscallNumber("io_submit")), -38);
  EXPECT_EQ(shim.enosys_calls(), 1u);
  EXPECT_EQ(shim.calls(), 2u);
}

TEST(FdTableTest, InstallCloseReuse) {
  FdTable tab(16);
  auto pending = std::make_shared<PendingSocket>();
  int fd = tab.Install(pending);
  EXPECT_EQ(fd, 3);  // 0-2 reserved
  EXPECT_TRUE(tab.InUse(fd));
  EXPECT_TRUE(Ok(tab.Close(fd)));
  EXPECT_FALSE(tab.InUse(fd));
  EXPECT_EQ(tab.Close(fd), ukarch::Status::kBadF);
  EXPECT_EQ(tab.Install(std::make_shared<PendingSocket>()), 3);  // lowest reused
}

TEST(FdTableTest, Dup2ClosesTargetButSelfDupIsNoOp) {
  FdTable tab(16);
  int fd = tab.Install(std::make_shared<PendingSocket>());
  int other = tab.Install(std::make_shared<PendingSocket>());
  // POSIX: dup2 with equal descriptors returns newfd and closes nothing.
  EXPECT_EQ(tab.Dup2(fd, fd), fd);
  EXPECT_TRUE(tab.InUse(fd));
  // Distinct descriptors: the target is implicitly closed, then replaced.
  EXPECT_EQ(tab.Dup2(fd, other), other);
  EXPECT_EQ(tab.Get<PendingSocket>(other), tab.Get<PendingSocket>(fd));
}

TEST(FdTableTest, ExhaustionGivesEmfile) {
  FdTable tab(5);  // fds 3,4 usable
  EXPECT_EQ(tab.Install(std::make_shared<PendingSocket>()), 3);
  EXPECT_EQ(tab.Install(std::make_shared<PendingSocket>()), 4);
  EXPECT_EQ(tab.Install(std::make_shared<PendingSocket>()), -24);  // EMFILE
}

TEST(FdTableTest, TypedGet) {
  FdTable tab(16);
  int fd = tab.Install(std::make_shared<PendingSocket>());
  EXPECT_NE(tab.Get<PendingSocket>(fd), nullptr);
  EXPECT_EQ(tab.Get<vfscore::File>(fd), nullptr);
  EXPECT_EQ(tab.Get<PendingSocket>(99), nullptr);
  EXPECT_EQ(tab.Get<PendingSocket>(-1), nullptr);
}

class PosixApiTest : public ::testing::Test {
 protected:
  PosixApiTest() : bed_(env::Profile::UnikraftKvm()) {}
  env::TestBed bed_;
};

TEST_F(PosixApiTest, FileLifecycle) {
  posix::PosixApi& api = bed_.api();
  int fd = api.Open("/notes.txt", vfscore::kWrite | vfscore::kCreate);
  ASSERT_GE(fd, 3);
  const char text[] = "posix over vfscore";
  EXPECT_EQ(api.Write(fd, std::as_bytes(std::span(text, sizeof(text) - 1))),
            static_cast<std::int64_t>(sizeof(text) - 1));
  EXPECT_EQ(api.Close(fd), 0);

  int rd = api.Open("/notes.txt", vfscore::kRead);
  ASSERT_GE(rd, 3);
  char buf[64] = {};
  EXPECT_EQ(api.Read(rd, std::as_writable_bytes(std::span(buf))),
            static_cast<std::int64_t>(sizeof(text) - 1));
  EXPECT_STREQ(buf, text);
  api.Close(rd);

  vfscore::NodeStat st;
  EXPECT_EQ(api.Stat("/notes.txt", &st), 0);
  EXPECT_EQ(st.size, sizeof(text) - 1);
  EXPECT_EQ(api.Unlink("/notes.txt"), 0);
  EXPECT_EQ(api.Open("/notes.txt", vfscore::kRead), -2);  // ENOENT
}

TEST_F(PosixApiTest, PreadPwriteAndSeek) {
  posix::PosixApi& api = bed_.api();
  int fd = api.Open("/f", vfscore::kWrite | vfscore::kRead | vfscore::kCreate);
  const char text[] = "0123456789";
  api.Write(fd, std::as_bytes(std::span(text, 10)));
  char buf[4] = {};
  EXPECT_EQ(api.Pread(fd, 4, std::as_writable_bytes(std::span(buf))), 4);
  EXPECT_EQ(buf[0], '4');
  EXPECT_EQ(api.Lseek(fd, 2, 0), 2);
  EXPECT_EQ(api.Read(fd, std::as_writable_bytes(std::span(buf, 1))), 1);
  EXPECT_EQ(buf[0], '2');
  api.Close(fd);
}

TEST_F(PosixApiTest, FsyncErrnoSemantics) {
  posix::PosixApi& api = bed_.api();
  // Unknown fd: EBADF.
  EXPECT_EQ(api.Fsync(99), ukarch::Raw(ukarch::Status::kBadF));
  // Read-only descriptor: EBADF (nothing of this handle's can be dirty).
  int wr = api.Open("/sync.txt", vfscore::kWrite | vfscore::kCreate);
  ASSERT_GE(wr, 3);
  const char text[] = "dirty";
  api.Write(wr, std::as_bytes(std::span(text, 5)));
  EXPECT_EQ(api.Fsync(wr), 0);  // ramfs: Node::Fsync no-op, still success
  int rd = api.Open("/sync.txt", vfscore::kRead);
  ASSERT_GE(rd, 3);
  EXPECT_EQ(api.Fsync(rd), ukarch::Raw(ukarch::Status::kBadF));
  api.Close(wr);
  api.Close(rd);
}

TEST_F(PosixApiTest, EveryCallChargesDispatchCost) {
  posix::PosixApi& api = bed_.api();
  std::uint64_t calls_before = api.shim().calls();
  std::uint64_t cycles_before = bed_.clock().cycles();
  api.GetPid();
  EXPECT_EQ(api.shim().calls(), calls_before + 1);
  EXPECT_GE(bed_.clock().cycles() - cycles_before,
            SyscallShim::EntryCost(DispatchMode::kDirectCall,
                                   bed_.clock().model()));
}

TEST_F(PosixApiTest, UdpSocketRoundTrip) {
  posix::PosixApi& api = bed_.api();
  int fd = api.Socket(SockType::kDgram);
  ASSERT_GE(fd, 3);
  EXPECT_EQ(api.Bind(fd, 5353), 0);

  // Client sends a datagram from the other host.
  auto client = bed_.client().stack->UdpOpen();
  std::uint8_t ping[] = {'p', 'i', 'n', 'g'};
  client->SendTo(env::TestBed::kServerIp, 5353, ping);
  for (int i = 0; i < 100; ++i) {
    bed_.Poll();
  }
  std::uint8_t buf[64];
  uknet::Ip4Addr src_ip = 0;
  std::uint16_t src_port = 0;
  EXPECT_EQ(api.RecvFrom(fd, buf, &src_ip, &src_port), 4);
  EXPECT_EQ(src_ip, env::TestBed::kClientIp);
  // Reply.
  EXPECT_EQ(api.SendTo(fd, src_ip, src_port, std::span(buf, 4)), 4);
  for (int i = 0; i < 100; ++i) {
    bed_.Poll();
  }
  EXPECT_TRUE(client->readable());
}

TEST_F(PosixApiTest, TcpServerAcceptThroughApi) {
  posix::PosixApi& api = bed_.api();
  int fd = api.Socket(SockType::kStream);
  ASSERT_GE(fd, 3);
  EXPECT_EQ(api.Bind(fd, 8080), 0);
  EXPECT_EQ(api.Listen(fd), 0);
  EXPECT_EQ(api.Accept(fd), -11);  // EAGAIN, nothing pending

  auto client = bed_.client().stack->TcpConnect(env::TestBed::kServerIp, 8080);
  for (int i = 0; i < 200 && !client->connected(); ++i) {
    bed_.Poll();
  }
  ASSERT_TRUE(client->connected());
  int conn = api.Accept(fd);
  ASSERT_GE(conn, 3);

  std::uint8_t msg[] = {'h', 'i'};
  client->Send(msg);
  for (int i = 0; i < 100; ++i) {
    bed_.Poll();
  }
  std::uint8_t buf[16];
  EXPECT_EQ(api.Recv(conn, buf), 2);
  EXPECT_EQ(buf[0], 'h');
}

TEST_F(PosixApiTest, BatchedMmsgFewerSyscalls) {
  posix::PosixApi& api = bed_.api();
  int fd = api.Socket(SockType::kDgram);
  api.Bind(fd, 9000);
  auto client = bed_.client().stack->UdpOpen();
  for (int i = 0; i < 8; ++i) {
    std::uint8_t d[] = {static_cast<std::uint8_t>(i)};
    client->SendTo(env::TestBed::kServerIp, 9000, d);
    bed_.Poll();
  }
  for (int i = 0; i < 100; ++i) {
    bed_.Poll();
  }
  std::uint64_t calls_before = api.shim().calls();
  std::uint8_t storage[8][64];
  MmsgRecv msgs[8];
  for (int i = 0; i < 8; ++i) {
    msgs[i].data = storage[i];
    msgs[i].cap = 64;
  }
  EXPECT_EQ(api.RecvMmsg(fd, msgs), 8);
  EXPECT_EQ(api.shim().calls(), calls_before + 1);  // one syscall, 8 packets
  EXPECT_EQ(msgs[3].len, 1u);
  EXPECT_EQ(storage[3][0], 3);
}

}  // namespace
