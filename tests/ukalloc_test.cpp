// Backend-specific allocator tests: buddy coalescing, TLSF invariants,
// tinyalloc list behaviour, mimalloc-lite size classes, region semantics.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "ukalloc/buddy.h"
#include "ukalloc/mimalloc_lite.h"
#include "ukalloc/region.h"
#include "ukalloc/registry.h"
#include "ukalloc/tinyalloc.h"
#include "ukalloc/tlsf.h"

namespace {

using namespace ukalloc;

constexpr std::size_t kHeap = 4 << 20;

class Arena {
 public:
  explicit Arena(std::size_t size = kHeap) : mem_(new std::byte[size]), size_(size) {}
  std::byte* data() { return mem_.get(); }
  std::size_t size() const { return size_; }

 private:
  std::unique_ptr<std::byte[]> mem_;
  std::size_t size_;
};

// ---- Buddy ------------------------------------------------------------------

TEST(Buddy, SplitAndCoalesceRestoresFreeList) {
  Arena arena;
  BuddyAllocator a(arena.data(), arena.size());
  std::size_t before_large = 0;
  for (unsigned o = BuddyAllocator::kMinOrder; o <= 30; ++o) {
    before_large += a.FreeBlocksAt(o);
  }
  void* p = a.Malloc(100);
  ASSERT_NE(p, nullptr);
  a.Free(p);
  std::size_t after_large = 0;
  for (unsigned o = BuddyAllocator::kMinOrder; o <= 30; ++o) {
    after_large += a.FreeBlocksAt(o);
  }
  // Full coalescing must restore the exact original block structure.
  EXPECT_EQ(before_large, after_large);
}

TEST(Buddy, DetectsDoubleFree) {
  Arena arena;
  BuddyAllocator a(arena.data(), arena.size());
  void* p = a.Malloc(64);
  a.Free(p);
  a.Free(p);
  EXPECT_EQ(a.double_free_count(), 1u);
}

TEST(Buddy, PowerOfTwoUsableSizes) {
  Arena arena;
  BuddyAllocator a(arena.data(), arena.size());
  void* p = a.Malloc(100);
  // 100 + 16B header -> 128-byte block -> 112 usable.
  EXPECT_EQ(a.UsableSize(p), 112u);
  a.Free(p);
}

TEST(Buddy, ExhaustionReturnsNull) {
  Arena arena(64 * 1024);
  BuddyAllocator a(arena.data(), arena.size());
  std::vector<void*> ptrs;
  void* p = nullptr;
  while ((p = a.Malloc(4096)) != nullptr) {
    ptrs.push_back(p);
  }
  EXPECT_GT(ptrs.size(), 4u);
  EXPECT_GT(a.stats().failed_allocs, 0u);
  for (void* q : ptrs) {
    a.Free(q);
  }
  // After freeing everything a large allocation must succeed again.
  EXPECT_NE(a.Malloc(16 * 1024), nullptr);
}

TEST(Buddy, BuddyOfDifferentOrderNotMerged) {
  Arena arena;
  BuddyAllocator a(arena.data(), arena.size());
  void* small = a.Malloc(40);   // 64-byte block
  void* big = a.Malloc(100);    // 128-byte block
  ASSERT_NE(small, nullptr);
  ASSERT_NE(big, nullptr);
  a.Free(small);
  // big still allocated; writing through it must stay intact.
  std::memset(big, 0xAB, 100);
  a.Free(big);
  EXPECT_EQ(a.double_free_count(), 0u);
}

// ---- TLSF -------------------------------------------------------------------

TEST(Tlsf, InvariantsHoldAfterChurn) {
  Arena arena;
  TlsfAllocator a(arena.data(), arena.size());
  EXPECT_TRUE(a.CheckInvariants());
  std::vector<void*> live;
  for (int i = 0; i < 500; ++i) {
    live.push_back(a.Malloc(static_cast<std::size_t>(17 * (i % 40) + 8)));
    if (i % 3 == 0 && !live.empty()) {
      a.Free(live.front());
      live.erase(live.begin());
    }
  }
  EXPECT_TRUE(a.CheckInvariants());
  for (void* p : live) {
    a.Free(p);
  }
  EXPECT_TRUE(a.CheckInvariants());
}

TEST(Tlsf, FullCoalescingRestoresLargestBlock) {
  Arena arena;
  TlsfAllocator a(arena.data(), arena.size());
  std::size_t initial = a.LargestFreeBlock();
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    ptrs.push_back(a.Malloc(1000));
  }
  EXPECT_LT(a.LargestFreeBlock(), initial);
  for (void* p : ptrs) {
    a.Free(p);
  }
  EXPECT_EQ(a.LargestFreeBlock(), initial);
}

TEST(Tlsf, GoodFitNeverReturnsTooSmall) {
  Arena arena;
  TlsfAllocator a(arena.data(), arena.size());
  for (std::size_t size : {1u, 15u, 16u, 17u, 255u, 256u, 257u, 4095u, 65537u}) {
    void* p = a.Malloc(size);
    ASSERT_NE(p, nullptr) << size;
    EXPECT_GE(a.UsableSize(p), size);
    a.Free(p);
  }
}

TEST(Tlsf, ReusesFreedBlock) {
  Arena arena;
  TlsfAllocator a(arena.data(), arena.size());
  void* p = a.Malloc(128);
  a.Free(p);
  void* q = a.Malloc(128);
  EXPECT_EQ(p, q);  // O(1) good-fit should hand the same block back
  a.Free(q);
}

TEST(Tlsf, DoubleFreeIgnored) {
  Arena arena;
  TlsfAllocator a(arena.data(), arena.size());
  void* p = a.Malloc(64);
  a.Free(p);
  a.Free(p);  // must not corrupt
  EXPECT_TRUE(a.CheckInvariants());
}

// ---- tinyalloc --------------------------------------------------------------

TEST(TinyAlloc, FirstFitAndCompaction) {
  Arena arena;
  TinyAllocator a(arena.data(), arena.size());
  void* p1 = a.Malloc(100);
  void* p2 = a.Malloc(100);
  void* p3 = a.Malloc(100);
  ASSERT_NE(p3, nullptr);
  a.Free(p1);
  a.Free(p2);  // adjacent: compaction should merge them
  EXPECT_EQ(a.free_list_length(), 1u);
  // The merged block fits a 200-byte request that neither piece could.
  void* big = a.Malloc(200);
  EXPECT_EQ(big, p1);
  a.Free(big);
  a.Free(p3);
}

TEST(TinyAlloc, FreeUnknownPointerIgnored) {
  Arena arena;
  TinyAllocator a(arena.data(), arena.size());
  int x = 0;
  a.Free(&x);
  EXPECT_EQ(a.used_list_length(), 0u);
}

TEST(TinyAlloc, BlockDescriptorExhaustion) {
  Arena arena;
  TinyAllocator a(arena.data(), arena.size(), /*max_blocks=*/8);
  std::vector<void*> ptrs;
  for (int i = 0; i < 8; ++i) {
    void* p = a.Malloc(32);
    if (p != nullptr) {
      ptrs.push_back(p);
    }
  }
  // With 8 descriptors at most 8 concurrent blocks exist.
  EXPECT_LE(ptrs.size(), 8u);
  EXPECT_EQ(a.Malloc(32), nullptr);
  for (void* p : ptrs) {
    a.Free(p);
  }
  EXPECT_NE(a.Malloc(32), nullptr);
}

TEST(TinyAlloc, ReuseAfterFree) {
  Arena arena;
  TinyAllocator a(arena.data(), arena.size());
  void* p = a.Malloc(64);
  a.Free(p);
  void* q = a.Malloc(64);
  EXPECT_EQ(p, q);
  a.Free(q);
}

// ---- mimalloc-lite ----------------------------------------------------------

TEST(Mimalloc, SizeClassesAreMonotonic) {
  std::size_t prev = 0;
  for (unsigned cls = 0; cls < 32; ++cls) {
    std::size_t bs = MimallocLite::ClassBlockSize(cls);
    EXPECT_GT(bs, prev);
    prev = bs;
  }
  EXPECT_EQ(MimallocLite::ClassBlockSize(MimallocLite::SizeClassOf(1)), 16u);
  EXPECT_EQ(MimallocLite::ClassBlockSize(MimallocLite::SizeClassOf(16)), 16u);
  EXPECT_EQ(MimallocLite::ClassBlockSize(MimallocLite::SizeClassOf(17)), 32u);
}

TEST(Mimalloc, ClassOfIsTightFit) {
  for (std::size_t size = 1; size <= MimallocLite::kMaxSmall; size += 7) {
    unsigned cls = MimallocLite::SizeClassOf(size);
    std::size_t bs = MimallocLite::ClassBlockSize(cls);
    EXPECT_GE(bs, size);
    if (cls > 0) {
      EXPECT_LT(MimallocLite::ClassBlockSize(cls - 1), size);
    }
  }
}

TEST(Mimalloc, PageRecycledWhenEmpty) {
  Arena arena;
  MimallocLite a(arena.data(), arena.size());
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    ptrs.push_back(a.Malloc(64));
  }
  std::size_t pages = a.PagesInUse();
  EXPECT_GE(pages, 1u);
  for (void* p : ptrs) {
    a.Free(p);
  }
  EXPECT_EQ(a.PagesInUse(), 0u);
}

TEST(Mimalloc, HugeAllocationRoundTrip) {
  Arena arena;
  MimallocLite a(arena.data(), arena.size());
  void* p = a.Malloc(300 * 1024);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(a.UsableSize(p), 300u * 1024);
  std::memset(p, 0x5A, 300 * 1024);
  a.Free(p);
  // The span must be reusable.
  void* q = a.Malloc(300 * 1024);
  ASSERT_NE(q, nullptr);
  a.Free(q);
}

TEST(Mimalloc, FreeListSharding) {
  Arena arena;
  MimallocLite a(arena.data(), arena.size());
  // Same-class blocks freed and reallocated must come from the same page
  // (spatial locality, mimalloc's key property).
  void* p1 = a.Malloc(48);
  void* p2 = a.Malloc(48);
  a.Free(p1);
  void* p3 = a.Malloc(48);
  EXPECT_EQ(p3, p1);
  a.Free(p2);
  a.Free(p3);
}

// ---- region (bootalloc) -----------------------------------------------------

TEST(Region, BumpAllocatesAndNeverReclaims) {
  Arena arena(64 * 1024);
  RegionAllocator a(arena.data(), arena.size());
  std::size_t before = a.bytes_remaining();
  void* p = a.Malloc(1000);
  ASSERT_NE(p, nullptr);
  a.Free(p);
  EXPECT_LT(a.bytes_remaining(), before);  // free does not give memory back
}

TEST(Region, ExhaustsAtLimit) {
  Arena arena(4096);
  RegionAllocator a(arena.data(), arena.size());
  EXPECT_NE(a.Malloc(2000), nullptr);
  EXPECT_EQ(a.Malloc(4000), nullptr);
}

TEST(Region, MemalignNative) {
  Arena arena(64 * 1024);
  RegionAllocator a(arena.data(), arena.size());
  void* p = a.Memalign(4096, 100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 4096, 0u);
  EXPECT_GE(a.UsableSize(p), 100u);
}

// ---- registry ---------------------------------------------------------------

TEST(Registry, CreatesEveryBackend) {
  Arena arena;
  for (Backend b : AllBackends()) {
    auto a = CreateAllocator(b, arena.data(), arena.size());
    ASSERT_NE(a, nullptr);
    EXPECT_STREQ(a->name(), BackendName(b));
    void* p = a->Malloc(128);
    EXPECT_NE(p, nullptr) << BackendName(b);
    a->Free(p);
  }
}

TEST(Registry, ParseRoundTrip) {
  for (Backend b : AllBackends()) {
    Backend parsed;
    ASSERT_TRUE(ParseBackend(BackendName(b), &parsed));
    EXPECT_EQ(parsed, b);
  }
  Backend dummy;
  EXPECT_FALSE(ParseBackend("jemalloc", &dummy));
}

}  // namespace
