// Tests for ukarch helpers: alignment math, hashes, deterministic RNG.
#include <gtest/gtest.h>

#include <set>

#include "ukarch/align.h"
#include "ukarch/hash.h"
#include "ukarch/random.h"
#include "ukarch/status.h"

namespace {

using namespace ukarch;

TEST(Align, IsPow2) {
  EXPECT_FALSE(IsPow2(0));
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(2));
  EXPECT_FALSE(IsPow2(3));
  EXPECT_TRUE(IsPow2(1ull << 40));
  EXPECT_FALSE(IsPow2((1ull << 40) + 1));
}

TEST(Align, AlignUpDown) {
  EXPECT_EQ(AlignUp(0, 16), 0u);
  EXPECT_EQ(AlignUp(1, 16), 16u);
  EXPECT_EQ(AlignUp(16, 16), 16u);
  EXPECT_EQ(AlignUp(17, 16), 32u);
  EXPECT_EQ(AlignDown(17, 16), 16u);
  EXPECT_EQ(AlignDown(15, 16), 0u);
  EXPECT_TRUE(IsAligned(4096, 4096));
  EXPECT_FALSE(IsAligned(4097, 4096));
}

TEST(Align, CeilPow2) {
  EXPECT_EQ(CeilPow2(0), 1u);
  EXPECT_EQ(CeilPow2(1), 1u);
  EXPECT_EQ(CeilPow2(2), 2u);
  EXPECT_EQ(CeilPow2(3), 4u);
  EXPECT_EQ(CeilPow2(4096), 4096u);
  EXPECT_EQ(CeilPow2(4097), 8192u);
  EXPECT_EQ(CeilPow2((1ull << 35) + 1), 1ull << 36);
}

TEST(Align, Log2) {
  EXPECT_EQ(Log2Floor(1), 0u);
  EXPECT_EQ(Log2Floor(2), 1u);
  EXPECT_EQ(Log2Floor(3), 1u);
  EXPECT_EQ(Log2Floor(1024), 10u);
  EXPECT_EQ(Log2Ceil(1024), 10u);
  EXPECT_EQ(Log2Ceil(1025), 11u);
}

TEST(Align, FfsFls) {
  EXPECT_EQ(Ffs(0), 0u);
  EXPECT_EQ(Ffs(1), 1u);
  EXPECT_EQ(Ffs(8), 4u);
  EXPECT_EQ(Ffs(0b1010'0000), 6u);
  EXPECT_EQ(Fls(0), 0u);
  EXPECT_EQ(Fls(1), 1u);
  EXPECT_EQ(Fls(0xFF), 8u);
}

TEST(Hash, Fnv1aStable) {
  // Known-good FNV-1a vectors guard against accidental constant changes.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
  EXPECT_EQ(Fnv1a32(""), 0x811c9dc5u);
}

TEST(Hash, Mix64Spreads) {
  std::set<std::uint64_t> low_bits;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    low_bits.insert(Mix64(i) & 0xFF);
  }
  // Sequential inputs must hit most byte buckets.
  EXPECT_GT(low_bits.size(), 200u);
}

TEST(Random, Deterministic) {
  Xorshift a(42);
  Xorshift b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Random, RangeBounds) {
  Xorshift rng(7);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.NextInRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(Random, ZipfishSkew) {
  Xorshift rng(3);
  std::uint64_t low = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextZipfish(100) < 20) {
      ++low;
    }
  }
  // min-of-three sampling concentrates mass at small indices: P(<20) ~ 1-0.8^3.
  EXPECT_GT(low, kDraws / 3u);
}

TEST(Status, RoundTrip) {
  EXPECT_TRUE(Ok(Status::kOk));
  EXPECT_FALSE(Ok(Status::kNoMem));
  EXPECT_EQ(Raw(Status::kNoSys), -38);
  EXPECT_STREQ(StatusName(Status::kNoEnt), "ENOENT");
  EXPECT_STREQ(StatusName(Status::kConnRefused), "ECONNREFUSED");
}

}  // namespace
