// Property tests applied uniformly to every allocator backend via TEST_P:
// payload integrity under churn, alignment contracts, calloc zeroing,
// realloc data preservation, stats accounting. The bootalloc region allocator
// participates in all properties except reuse-after-free.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "ukalloc/registry.h"
#include "ukarch/random.h"

namespace {

using namespace ukalloc;

class AllocProperty : public ::testing::TestWithParam<Backend> {
 protected:
  static constexpr std::size_t kHeap = 8 << 20;

  AllocProperty() : mem_(new std::byte[kHeap]) {
    alloc_ = CreateAllocator(GetParam(), mem_.get(), kHeap);
  }

  bool Reclaims() const { return GetParam() != Backend::kBootAlloc; }

  std::unique_ptr<std::byte[]> mem_;
  std::unique_ptr<Allocator> alloc_;
};

TEST_P(AllocProperty, PayloadsDoNotOverlapAndSurviveChurn) {
  ukarch::Xorshift rng(1234);
  struct Live {
    void* p;
    std::uint8_t fill;
    std::size_t size;
  };
  std::vector<Live> live;
  for (int step = 0; step < 2000; ++step) {
    bool do_alloc = live.empty() || (rng.Next() % 100) < 60;
    if (do_alloc) {
      std::size_t size = 1 + rng.NextBelow(2048);
      void* p = alloc_->Malloc(size);
      if (p == nullptr) {
        continue;  // heap pressure is fine; integrity is what we check
      }
      auto fill = static_cast<std::uint8_t>(rng.Next());
      std::memset(p, fill, size);
      live.push_back({p, fill, size});
    } else {
      std::size_t idx = rng.NextBelow(live.size());
      Live& v = live[idx];
      // Verify the fill survived all interleaved operations.
      auto* bytes = static_cast<std::uint8_t*>(v.p);
      for (std::size_t i = 0; i < v.size; i += 97) {
        ASSERT_EQ(bytes[i], v.fill) << alloc_->name() << " corrupted at step " << step;
      }
      ASSERT_EQ(bytes[v.size - 1], v.fill);
      alloc_->Free(v.p);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  for (Live& v : live) {
    auto* bytes = static_cast<std::uint8_t*>(v.p);
    ASSERT_EQ(bytes[0], v.fill);
    alloc_->Free(v.p);
  }
}

TEST_P(AllocProperty, MallocReturns16ByteAligned) {
  for (std::size_t size : {1u, 3u, 17u, 100u, 1000u, 5000u}) {
    void* p = alloc_->Malloc(size);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u)
        << alloc_->name() << " size " << size;
    alloc_->Free(p);
  }
}

TEST_P(AllocProperty, MemalignHonoursEveryPow2) {
  for (std::size_t align = 32; align <= 4096; align <<= 1) {
    void* p = alloc_->Memalign(align, 128);
    ASSERT_NE(p, nullptr) << alloc_->name() << " align " << align;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << alloc_->name() << " align " << align;
    std::memset(p, 0xCD, 128);
    alloc_->Free(p);
  }
}

TEST_P(AllocProperty, MemalignRejectsNonPow2) {
  EXPECT_EQ(alloc_->Memalign(48, 64), nullptr);
  EXPECT_EQ(alloc_->Memalign(0, 64), nullptr);
}

TEST_P(AllocProperty, CallocZeroes) {
  auto* p = static_cast<std::uint8_t*>(alloc_->Calloc(100, 7));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 700; ++i) {
    ASSERT_EQ(p[i], 0u);
  }
  alloc_->Free(p);
}

TEST_P(AllocProperty, CallocOverflowRejected) {
  EXPECT_EQ(alloc_->Calloc(SIZE_MAX / 2, 4), nullptr);
}

TEST_P(AllocProperty, ReallocPreservesPrefix) {
  auto* p = static_cast<std::uint8_t*>(alloc_->Malloc(64));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 64; ++i) {
    p[i] = static_cast<std::uint8_t>(i * 3);
  }
  auto* q = static_cast<std::uint8_t*>(alloc_->Realloc(p, 4096));
  ASSERT_NE(q, nullptr);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(q[i], static_cast<std::uint8_t>(i * 3));
  }
  alloc_->Free(q);
}

TEST_P(AllocProperty, ReallocNullActsAsMalloc) {
  void* p = alloc_->Realloc(nullptr, 100);
  ASSERT_NE(p, nullptr);
  alloc_->Free(p);
}

TEST_P(AllocProperty, ReallocZeroFrees) {
  void* p = alloc_->Malloc(100);
  EXPECT_EQ(alloc_->Realloc(p, 0), nullptr);
}

TEST_P(AllocProperty, UsableSizeAtLeastRequested) {
  for (std::size_t size : {1u, 16u, 100u, 333u, 4096u, 10000u}) {
    void* p = alloc_->Malloc(size);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(alloc_->UsableSize(p), size) << alloc_->name();
    alloc_->Free(p);
  }
}

TEST_P(AllocProperty, StatsTrackCallsAndPeak) {
  void* a = alloc_->Malloc(1000);
  void* b = alloc_->Malloc(1000);
  alloc_->Free(a);
  alloc_->Free(b);
  const AllocStats& s = alloc_->stats();
  EXPECT_EQ(s.malloc_calls, 2u);
  EXPECT_EQ(s.free_calls, 2u);
  EXPECT_GE(s.peak_bytes, 2000u);
  if (Reclaims()) {
    EXPECT_EQ(s.bytes_in_use, 0u);
  }
  EXPECT_EQ(s.heap_bytes, kHeap);
}

TEST_P(AllocProperty, MemoryIsReusedAfterFree) {
  if (!Reclaims()) {
    GTEST_SKIP() << "bootalloc never reclaims by design";
  }
  // Allocate/free cycles must not leak: total distinct addresses is bounded.
  std::map<void*, int> seen;
  for (int i = 0; i < 1000; ++i) {
    void* p = alloc_->Malloc(512);
    ASSERT_NE(p, nullptr);
    ++seen[p];
    alloc_->Free(p);
  }
  EXPECT_LT(seen.size(), 50u) << alloc_->name() << " appears to leak freed memory";
}

TEST_P(AllocProperty, ExhaustionIsCleanNotCrash) {
  std::vector<void*> ptrs;
  for (;;) {
    void* p = alloc_->Malloc(64 * 1024);
    if (p == nullptr) {
      break;
    }
    ptrs.push_back(p);
    ASSERT_LT(ptrs.size(), 100000u);
  }
  EXPECT_GT(alloc_->stats().failed_allocs, 0u);
  for (void* p : ptrs) {
    alloc_->Free(p);
  }
  if (Reclaims()) {
    EXPECT_NE(alloc_->Malloc(64 * 1024), nullptr);
  }
}

TEST_P(AllocProperty, FreeNullIsNoop) {
  alloc_->Free(nullptr);
  EXPECT_EQ(alloc_->stats().free_calls, 0u);
}

TEST_P(AllocProperty, ZeroSizeMallocGivesValidPointer) {
  void* p = alloc_->Malloc(0);
  ASSERT_NE(p, nullptr);
  alloc_->Free(p);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, AllocProperty,
                         ::testing::Values(Backend::kBuddy, Backend::kTlsf,
                                           Backend::kTinyAlloc, Backend::kMimalloc,
                                           Backend::kBootAlloc),
                         [](const ::testing::TestParamInfo<Backend>& param_info) {
                           return BackendName(param_info.param);
                         });

}  // namespace
