// Multi-queue datapath regression tests: RSS flow-hash properties, the
// same-flow-same-queue contract end to end, cross-queue demux isolation,
// per-queue pool exhaustion containment, and per-queue interrupt re-arm
// semantics. Fixtures come from net_harness.h.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "net_harness.h"
#include "ukalloc/registry.h"
#include "ukarch/hash.h"
#include "uknet/stack.h"
#include "uknetdev/loopback.h"
#include "uknetdev/rss.h"
#include "uknetdev/virtio_net.h"

namespace {

using namespace uknet;
using netharness::Host;
using netharness::ZeroAllocGuard;

// Builds a minimal-but-parseable Ethernet+IPv4+UDP frame (no checksums; the
// RSS classifier, like NIC hardware, never verifies them).
std::vector<std::uint8_t> UdpFrame(Ip4Addr src_ip, std::uint16_t src_port,
                                   Ip4Addr dst_ip, std::uint16_t dst_port,
                                   std::size_t payload_len = 4) {
  std::vector<std::uint8_t> f(14 + 20 + 8 + payload_len, 0);
  f[12] = 0x08;  // ethertype IPv4
  f[13] = 0x00;
  std::uint8_t* ip = f.data() + 14;
  ip[0] = 0x45;
  netharness::PutU16(ip + 2, static_cast<std::uint16_t>(f.size() - 14));
  ip[8] = 64;
  ip[9] = 17;  // UDP
  ip[12] = static_cast<std::uint8_t>(src_ip >> 24);
  ip[13] = static_cast<std::uint8_t>(src_ip >> 16);
  ip[14] = static_cast<std::uint8_t>(src_ip >> 8);
  ip[15] = static_cast<std::uint8_t>(src_ip);
  ip[16] = static_cast<std::uint8_t>(dst_ip >> 24);
  ip[17] = static_cast<std::uint8_t>(dst_ip >> 16);
  ip[18] = static_cast<std::uint8_t>(dst_ip >> 8);
  ip[19] = static_cast<std::uint8_t>(dst_ip);
  netharness::PutU16(ip + 20, src_port);
  netharness::PutU16(ip + 22, dst_port);
  netharness::PutU16(ip + 24, static_cast<std::uint16_t>(8 + payload_len));
  return f;
}

// ---- hash-level properties ----------------------------------------------------------

// The steering contract over 1000 pseudo-random 4-tuples: the flow hash is
// deterministic, direction-independent, agrees between the stack's TxQueueFor
// input (FlowHash4) and the device classifier (RssQueueForFrame), and does
// not degenerate onto a single queue.
TEST(RssFlowHash, SameFlowSameQueueUnder1000RandomTuples) {
  constexpr std::uint16_t kQueues = 4;
  std::size_t per_queue[kQueues] = {0};
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t r1 = ukarch::Mix64(i * 2 + 1);
    const std::uint64_t r2 = ukarch::Mix64(i * 2 + 2);
    const Ip4Addr ip_a = static_cast<Ip4Addr>(r1);
    const Ip4Addr ip_b = static_cast<Ip4Addr>(r1 >> 32);
    const std::uint16_t port_a = static_cast<std::uint16_t>(r2);
    const std::uint16_t port_b = static_cast<std::uint16_t>(r2 >> 16);

    // Symmetric and deterministic.
    const std::uint32_t h = ukarch::FlowHash4(ip_a, port_a, ip_b, port_b);
    EXPECT_EQ(h, ukarch::FlowHash4(ip_b, port_b, ip_a, port_a));
    EXPECT_EQ(h, ukarch::FlowHash4(ip_a, port_a, ip_b, port_b));

    // The table-driven fast path matches the bit-serial Toeplitz reference
    // over the canonical tuple (linearity must never drift).
    {
      std::uint32_t ca = ip_a, cb = ip_b;
      std::uint16_t pa = port_a, pb = port_b;
      if (ca > cb || (ca == cb && pa > pb)) {
        std::swap(ca, cb);
        std::swap(pa, pb);
      }
      const std::uint8_t tuple[12] = {
          static_cast<std::uint8_t>(ca >> 24), static_cast<std::uint8_t>(ca >> 16),
          static_cast<std::uint8_t>(ca >> 8),  static_cast<std::uint8_t>(ca),
          static_cast<std::uint8_t>(cb >> 24), static_cast<std::uint8_t>(cb >> 16),
          static_cast<std::uint8_t>(cb >> 8),  static_cast<std::uint8_t>(cb),
          static_cast<std::uint8_t>(pa >> 8),  static_cast<std::uint8_t>(pa),
          static_cast<std::uint8_t>(pb >> 8),  static_cast<std::uint8_t>(pb),
      };
      EXPECT_EQ(h, ukarch::Toeplitz32(tuple, sizeof(tuple)));
    }

    // The device classifier sees the same flow in both directions and maps
    // every frame of it to the same queue the stack steers TX to.
    auto fwd = UdpFrame(ip_a, port_a, ip_b, port_b);
    auto rev = UdpFrame(ip_b, port_b, ip_a, port_a);
    const std::uint16_t q =
        uknetdev::RssQueueForFrame(fwd.data(), fwd.size(), kQueues);
    EXPECT_EQ(q, uknetdev::RssQueueForFrame(rev.data(), rev.size(), kQueues));
    EXPECT_EQ(q, static_cast<std::uint16_t>(h % kQueues));
    ++per_queue[q];
  }
  // Spread: no queue is starved or swallows everything (Toeplitz over random
  // tuples lands well within these generous bounds).
  for (std::uint16_t q = 0; q < kQueues; ++q) {
    EXPECT_GT(per_queue[q], 100u) << "queue " << q << " starved";
    EXPECT_LT(per_queue[q], 500u) << "queue " << q << " overloaded";
  }
}

TEST(RssFlowHash, NonIpAndControlFramesLandOnQueueZero) {
  std::uint8_t arp[42] = {0};
  arp[12] = 0x08;
  arp[13] = 0x06;  // ethertype ARP
  EXPECT_EQ(uknetdev::RssQueueForFrame(arp, sizeof(arp), 4), 0);
  std::uint8_t runt[10] = {0};
  EXPECT_EQ(uknetdev::RssQueueForFrame(runt, sizeof(runt), 4), 0);
  EXPECT_EQ(uknetdev::RssQueueForFrame(nullptr, 0, 4), 0);
}

// ---- driver-level: loopback as the reference RSS device ----------------------------

class MultiQueueLoopbackTest : public ::testing::Test {
 protected:
  MultiQueueLoopbackTest() : mem_(32 << 20) {
    std::uint64_t heap_gpa = mem_.Carve(16 << 20, 4096);
    alloc_ = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                      mem_.At(heap_gpa, 16 << 20), 16 << 20);
  }

  // Builds a started 2-queue loopback with per-queue RX pools of |bufs| each.
  void Setup(std::uint32_t bufs = 16) {
    lo_ = std::make_unique<uknetdev::Loopback>(&mem_);
    uknetdev::DevConf conf;
    conf.nb_rx_queues = 2;
    conf.nb_tx_queues = 2;
    ASSERT_TRUE(Ok(lo_->Configure(conf)));
    for (std::uint16_t q = 0; q < 2; ++q) {
      rx_pools_.push_back(uknetdev::NetBufPool::Create(alloc_.get(), &mem_, bufs, 2048));
      ASSERT_NE(rx_pools_.back(), nullptr);
      ASSERT_TRUE(Ok(lo_->TxQueueSetup(q, uknetdev::TxQueueConf{})));
      uknetdev::RxQueueConf rxc;
      rxc.buffer_pool = rx_pools_.back().get();
      rxc.intr_handler = [this](std::uint16_t queue) { intr_log_.push_back(queue); };
      ASSERT_TRUE(Ok(lo_->RxQueueSetup(q, rxc)));
    }
    ASSERT_TRUE(Ok(lo_->Start()));
    tx_pool_ = uknetdev::NetBufPool::Create(alloc_.get(), &mem_, 64, 2048);
    ASSERT_NE(tx_pool_, nullptr);
  }

  // Finds a source port whose flow (10.0.0.2:port -> 10.0.0.1:7000) RSSes to
  // |queue| of 2.
  std::uint16_t PortForQueue(std::uint16_t queue) {
    for (std::uint16_t p = 20000;; ++p) {
      auto f = UdpFrame(MakeIp(10, 0, 0, 2), p, MakeIp(10, 0, 0, 1), 7000);
      if (uknetdev::RssQueueForFrame(f.data(), f.size(), 2) == queue) {
        return p;
      }
    }
  }

  // Transmits one crafted UDP frame through the loopback on TX queue 0.
  bool SendFlow(std::uint16_t src_port) {
    auto f = UdpFrame(MakeIp(10, 0, 0, 2), src_port, MakeIp(10, 0, 0, 1), 7000);
    uknetdev::NetBuf* nb = tx_pool_->Alloc();
    if (nb == nullptr) {
      return false;
    }
    std::byte* d = mem_.At(nb->data_gpa(), f.size());
    std::memcpy(d, f.data(), f.size());
    nb->len = static_cast<std::uint32_t>(f.size());
    std::uint16_t cnt = 1;
    lo_->TxBurst(0, &nb, &cnt);
    return cnt == 1;
  }

  std::uint16_t Drain(std::uint16_t queue) {
    uknetdev::NetBuf* rx[32];
    std::uint16_t got = 32;
    lo_->RxBurst(queue, rx, &got);
    for (std::uint16_t i = 0; i < got; ++i) {
      rx[i]->pool->Free(rx[i]);
    }
    return got;
  }

  ukplat::MemRegion mem_;
  std::unique_ptr<ukalloc::Allocator> alloc_;
  std::unique_ptr<uknetdev::Loopback> lo_;
  std::vector<std::unique_ptr<uknetdev::NetBufPool>> rx_pools_;
  std::unique_ptr<uknetdev::NetBufPool> tx_pool_;
  std::vector<std::uint16_t> intr_log_;
};

TEST_F(MultiQueueLoopbackTest, RssDemuxSteersFlowsToTheirQueues) {
  Setup();
  const std::uint16_t p0 = PortForQueue(0);
  const std::uint16_t p1 = PortForQueue(1);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(SendFlow(p0));
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(SendFlow(p1));
  }
  EXPECT_EQ(lo_->QueueStats(0).rx_packets, 0u);  // nothing drained yet
  EXPECT_EQ(Drain(0), 3);
  EXPECT_EQ(Drain(1), 5);
  EXPECT_EQ(lo_->QueueStats(0).rx_packets, 3u);
  EXPECT_EQ(lo_->QueueStats(1).rx_packets, 5u);
  EXPECT_EQ(lo_->stats().rx_packets, 8u);  // aggregate view still adds up
}

// Per-queue pool exhaustion: queue 0's pool runs dry, its overflow frames
// drop — and queue 1's flow keeps flowing with zero loss.
TEST_F(MultiQueueLoopbackTest, PoolExhaustionDoesNotStarveSiblingQueue) {
  Setup(/*bufs=*/4);
  const std::uint16_t p0 = PortForQueue(0);
  const std::uint16_t p1 = PortForQueue(1);
  for (int i = 0; i < 6; ++i) {
    SendFlow(p0);  // 4 land in q0's ring, 2 overflow the dry pool
  }
  EXPECT_EQ(lo_->QueueStats(0).rx_drops, 2u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(SendFlow(p1));  // sibling queue is untouched by q0's exhaustion
  }
  EXPECT_EQ(lo_->QueueStats(1).rx_drops, 0u);
  EXPECT_EQ(Drain(1), 4);
  EXPECT_EQ(Drain(0), 4);
  // After draining, q0's pool circulates again.
  ASSERT_TRUE(SendFlow(p0));
  EXPECT_EQ(Drain(0), 1);
  EXPECT_EQ(lo_->QueueStats(0).rx_drops, 2u);  // no further drops
}

// Interrupt storm-avoidance is per queue: each queue's line fires once on
// first delivery, stays silent while frames accumulate, and re-arms only
// when ITS ring drains — the sibling queue's state never interferes.
TEST_F(MultiQueueLoopbackTest, RxInterruptRearmIsPerQueue) {
  Setup();
  ASSERT_TRUE(Ok(lo_->RxIntrEnable(0)));
  ASSERT_TRUE(Ok(lo_->RxIntrEnable(1)));
  const std::uint16_t p0 = PortForQueue(0);
  const std::uint16_t p1 = PortForQueue(1);

  SendFlow(p0);
  ASSERT_EQ(intr_log_.size(), 1u);
  EXPECT_EQ(intr_log_[0], 0);
  SendFlow(p0);  // q0 not drained: no second interrupt (storm avoidance)
  EXPECT_EQ(intr_log_.size(), 1u);

  SendFlow(p1);  // q1 is independently armed: it fires
  ASSERT_EQ(intr_log_.size(), 2u);
  EXPECT_EQ(intr_log_[1], 1);

  EXPECT_EQ(Drain(0), 2);  // q0 drains -> re-arms
  SendFlow(p0);
  ASSERT_EQ(intr_log_.size(), 3u);
  EXPECT_EQ(intr_log_[2], 0);
  // q1 still holds an undrained frame: its line stays down.
  SendFlow(p1);
  EXPECT_EQ(intr_log_.size(), 3u);
  EXPECT_EQ(lo_->QueueStats(0).rx_interrupts, 2u);
  EXPECT_EQ(lo_->QueueStats(1).rx_interrupts, 1u);
}

// The loopback regression from ISSUE 3: RxIntrEnable silently accepted any
// queue index. Out-of-range queue operations must fail loudly on both
// drivers, and Configure must reject counts beyond the advertised maximum.
TEST_F(MultiQueueLoopbackTest, InvalidQueueIndicesRejected) {
  Setup();
  EXPECT_EQ(lo_->RxIntrEnable(2), ukarch::Status::kInval);
  EXPECT_EQ(lo_->RxIntrEnable(100), ukarch::Status::kInval);
  EXPECT_EQ(lo_->RxIntrDisable(2), ukarch::Status::kInval);
  EXPECT_EQ(lo_->TxQueueSetup(2, uknetdev::TxQueueConf{}), ukarch::Status::kInval);
  uknetdev::RxQueueConf rxc;
  rxc.buffer_pool = rx_pools_[0].get();
  EXPECT_EQ(lo_->RxQueueSetup(2, rxc), ukarch::Status::kInval);
  uknetdev::DevConf over;
  over.nb_rx_queues = uknetdev::Loopback::kMaxQueues + 1;
  uknetdev::Loopback fresh(&mem_);
  EXPECT_EQ(fresh.Configure(over), ukarch::Status::kInval);
}

TEST_F(MultiQueueLoopbackTest, VirtioRejectsInvalidQueueIndicesToo) {
  ukplat::Clock clock;
  ukplat::Wire wire(&clock);
  uknetdev::VirtioNet::Config cfg;
  cfg.max_queue_pairs = 2;
  uknetdev::VirtioNet nic(&mem_, &clock, &wire, cfg);
  uknetdev::DevConf over;
  over.nb_rx_queues = 3;
  over.nb_tx_queues = 3;
  EXPECT_EQ(nic.Configure(over), ukarch::Status::kNotSup);
  uknetdev::DevConf two;
  two.nb_rx_queues = 2;
  two.nb_tx_queues = 2;
  ASSERT_TRUE(Ok(nic.Configure(two)));
  EXPECT_EQ(nic.RxIntrEnable(2), ukarch::Status::kInval);
  EXPECT_EQ(nic.TxQueueSetup(2, uknetdev::TxQueueConf{}), ukarch::Status::kInval);
  uknetdev::RxQueueConf rxc;
  EXPECT_EQ(nic.RxQueueSetup(0, rxc), ukarch::Status::kInval);  // still needs a pool
}

// ---- stack-level: a 2-queue NetIf end to end ---------------------------------------

class TwoQueueStackTest : public netharness::TwoHostTest {
 protected:
  TwoQueueStackTest() : TwoHostTest(/*queues=*/2, /*pool_bufs=*/768) {}
};

// The tentpole property on the wire: every datagram of a flow lands on the
// queue the symmetric hash names, on both hosts, in both directions — and a
// warm echo round shows flat churn on the unused queue's pools.
TEST_F(TwoQueueStackTest, SameFlowSameQueueEndToEnd) {
  ASSERT_EQ(a_.netif->queue_count(), 2);
  ASSERT_EQ(b_.netif->queue_count(), 2);
  auto server = b_.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(7000)));

  // Warm ARP so queue steering (not resolution) decides the path.
  ASSERT_TRUE(a_.stack->Ping(MakeIp(10, 0, 0, 2), 1));
  ASSERT_TRUE(PumpUntil([&] { return a_.stack->pings_answered() == 1; }));

  // Several client sockets; each flow must arrive wholly on its hash queue.
  bool queue_hit[2] = {false, false};
  std::vector<std::shared_ptr<UdpSocket>> clients;
  for (int c = 0; c < 6; ++c) {
    auto client = a_.stack->UdpOpen();
    const std::uint16_t expected_q = static_cast<std::uint16_t>(
        ukarch::FlowHash4(MakeIp(10, 0, 0, 1), client->local_port(),
                          MakeIp(10, 0, 0, 2), 7000) %
        2);
    std::size_t before = server->queued();
    for (int i = 0; i < 4; ++i) {
      std::uint8_t msg[4] = {static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(i),
                             0, 0};
      ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 7000, msg), 4);
    }
    ASSERT_TRUE(PumpUntil([&] { return server->queued() >= before + 4; }));
    // All four datagrams of the flow arrived on the predicted queue.
    const DatagramView* views[64];
    std::size_t n = server->PeekBatch(views, 64);
    for (std::size_t i = before; i < n; ++i) {
      EXPECT_EQ(views[i]->rx_queue, expected_q) << "flow " << c;
    }
    // Replies ride the same flow back: the client's RX queue matches its own
    // hash of the (symmetric) tuple.
    std::uint8_t reply[4] = {0x99, 0, 0, 0};
    ASSERT_EQ(server->SendTo(MakeIp(10, 0, 0, 1), client->local_port(), reply), 4);
    ASSERT_TRUE(PumpUntil([&] { return client->readable(); }));
    EXPECT_EQ(client->last_rx_queue(), expected_q) << "flow " << c;
    while (client->RecvFrom().has_value()) {
    }
    queue_hit[expected_q] = true;
    clients.push_back(std::move(client));
  }
  // Six ephemeral ports hit both queues (hash spread sanity).
  EXPECT_TRUE(queue_hit[0]);
  EXPECT_TRUE(queue_hit[1]);
  server->ReleaseFront(server->queued());

  // Steady state, single-queue flow: the sibling queue's pools stay flat.
  std::shared_ptr<UdpSocket> q1_client;
  for (auto& c : clients) {
    if (ukarch::FlowHash4(MakeIp(10, 0, 0, 1), c->local_port(),
                          MakeIp(10, 0, 0, 2), 7000) %
            2 ==
        1) {
      q1_client = c;
      break;
    }
  }
  ASSERT_NE(q1_client, nullptr);
  ZeroAllocGuard guard({b_.netif->tx_pool(0), b_.netif->rx_pool(0),
                        b_.netif->tx_pool(1), b_.netif->rx_pool(1)},
                       b_.alloc.get());
  constexpr std::size_t kRound = 8;
  for (std::size_t i = 0; i < kRound; ++i) {
    std::uint8_t msg[4] = {'q', '1', static_cast<std::uint8_t>(i), 0};
    ASSERT_EQ(q1_client->SendTo(MakeIp(10, 0, 0, 2), 7000, msg), 4);
  }
  ASSERT_TRUE(PumpUntil([&] { return server->queued() >= kRound; }));
  const DatagramView* views[kRound];
  ASSERT_EQ(server->PeekBatch(views, kRound), kRound);
  for (std::size_t i = 0; i < kRound; ++i) {
    ASSERT_EQ(server->SendTo(views[i]->src_ip, views[i]->src_port,
                             std::span(views[i]->data, views[i]->len)),
              4);
  }
  server->ReleaseFront(kRound);
  ASSERT_TRUE(PumpUntil([&] { return q1_client->queued() >= kRound; }));
  EXPECT_EQ(guard.pool_allocs(0), 0u) << "queue 0 TX pool churned for a queue-1 flow";
  EXPECT_EQ(guard.pool_allocs(1), 0u) << "queue 0 RX pool churned for a queue-1 flow";
  EXPECT_EQ(guard.pool_allocs(2), kRound);  // one TX buf per reply, exact
  EXPECT_EQ(guard.pool_allocs(3), kRound);  // one RX refill per datagram
  guard.ExpectHeapSteady("2-queue udp echo steady state");
}

// TCP flows pin to their hash queue at connect/accept and never leave it.
TEST_F(TwoQueueStackTest, TcpConnectionsKeepQueueAffinity) {
  auto listener = b_.stack->TcpListen(8080);
  ASSERT_NE(listener, nullptr);
  bool queue_hit[2] = {false, false};
  for (int c = 0; c < 6; ++c) {
    auto client = a_.stack->TcpConnect(MakeIp(10, 0, 0, 2), 8080);
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(PumpUntil([&] { return client->connected(); }));
    auto server_sock = listener->Accept();
    ASSERT_NE(server_sock, nullptr);
    // Symmetric hash: both ends compute the same queue for the flow.
    EXPECT_EQ(client->tx_queue(), server_sock->tx_queue());
    queue_hit[client->tx_queue()] = true;

    std::uint8_t msg[] = {'m', 'q'};
    ASSERT_EQ(client->Send(msg), 2);
    ASSERT_TRUE(PumpUntil([&] { return server_sock->readable(); }));
    std::uint8_t buf[8];
    ASSERT_EQ(server_sock->Recv(buf), 2);
    server_sock->Send(std::span(buf, 2));
    ASSERT_TRUE(PumpUntil([&] { return client->readable(); }));
    ASSERT_EQ(client->Recv(buf), 2);
    // Segments of the flow arrived on the queue both ends steer TX to.
    EXPECT_EQ(server_sock->last_rx_queue(), server_sock->tx_queue());
    EXPECT_EQ(client->last_rx_queue(), client->tx_queue());
  }
  EXPECT_TRUE(queue_hit[0]);
  EXPECT_TRUE(queue_hit[1]);
}

// Disjoint queues demux independently: polling one queue delivers only the
// flows hashed to it; the sibling queue's traffic waits, untouched, until
// its own loop runs — the "independent app loops pump disjoint queues" model.
TEST_F(TwoQueueStackTest, CrossQueueDemuxIsolation) {
  auto server = b_.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(7000)));
  ASSERT_TRUE(a_.stack->Ping(MakeIp(10, 0, 0, 2), 1));
  ASSERT_TRUE(PumpUntil([&] { return a_.stack->pings_answered() == 1; }));

  // One client per queue.
  std::shared_ptr<UdpSocket> flow[2];
  while (flow[0] == nullptr || flow[1] == nullptr) {
    auto c = a_.stack->UdpOpen();
    std::uint16_t q = static_cast<std::uint16_t>(
        ukarch::FlowHash4(MakeIp(10, 0, 0, 1), c->local_port(),
                          MakeIp(10, 0, 0, 2), 7000) %
        2);
    if (flow[q] == nullptr) {
      flow[q] = std::move(c);
    }
  }
  std::uint8_t m0[] = {'q', '0'};
  std::uint8_t m1[] = {'q', '1'};
  ASSERT_EQ(flow[0]->SendTo(MakeIp(10, 0, 0, 2), 7000, m0), 2);
  ASSERT_EQ(flow[1]->SendTo(MakeIp(10, 0, 0, 2), 7000, m1), 2);
  for (int i = 0; i < 8; ++i) {
    a_.stack->Poll();  // client pushes both frames onto the wire
  }

  // Server pumps ONLY queue 0: exactly the queue-0 flow arrives.
  for (int i = 0; i < 8 && server->queued() < 1; ++i) {
    b_.netif->Poll(0);
  }
  ASSERT_EQ(server->queued(), 1u);
  {
    auto d = server->RecvFrom();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->src_port, flow[0]->local_port());
  }
  // Now the sibling loop runs: the queue-1 flow is still there, undropped.
  for (int i = 0; i < 8 && server->queued() < 1; ++i) {
    b_.netif->Poll(1);
  }
  ASSERT_EQ(server->queued(), 1u);
  auto d = server->RecvFrom();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src_port, flow[1]->local_port());
  EXPECT_EQ(server->last_rx_queue(), 1);
}

// A slow consumer parking one queue's RX pool degrades THAT queue to the
// copy fallback; the sibling queue keeps zero-copy delivery. Per-queue pools
// are the containment boundary.
TEST_F(TwoQueueStackTest, SlowConsumerOnOneQueueKeepsSiblingZeroCopy) {
  auto server = b_.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(7000)));
  ASSERT_TRUE(a_.stack->Ping(MakeIp(10, 0, 0, 2), 1));
  ASSERT_TRUE(PumpUntil([&] { return a_.stack->pings_answered() == 1; }));

  std::shared_ptr<UdpSocket> flow[2];
  while (flow[0] == nullptr || flow[1] == nullptr) {
    auto c = a_.stack->UdpOpen();
    std::uint16_t q = static_cast<std::uint16_t>(
        ukarch::FlowHash4(MakeIp(10, 0, 0, 1), c->local_port(),
                          MakeIp(10, 0, 0, 2), 7000) %
        2);
    if (flow[q] == nullptr) {
      flow[q] = std::move(c);
    }
  }

  // Flood queue 0's flow and hold every view (a parked consumer): available
  // buffers sink below the low-water mark, so late datagrams arrive copied.
  const std::uint32_t pool_cap = b_.netif->rx_pool(0)->capacity();
  const std::uint32_t low_water = pool_cap / 4;
  std::uint8_t msg[16] = {0};
  std::size_t sent = 0;
  while (b_.netif->rx_pool(0)->available() > low_water && sent < 600) {
    msg[0] = static_cast<std::uint8_t>(sent);
    ASSERT_EQ(flow[0]->SendTo(MakeIp(10, 0, 0, 2), 7000, msg), 16);
    ++sent;
    a_.stack->Poll();
    b_.stack->Poll();
  }
  ASSERT_LE(b_.netif->rx_pool(0)->available(), low_water);
  // One more on the exhausted queue: delivered, but as a copy (nb == null).
  msg[0] = 0xEE;
  ASSERT_EQ(flow[0]->SendTo(MakeIp(10, 0, 0, 2), 7000, msg), 16);
  ASSERT_TRUE(PumpUntil([&] { return server->queued() > sent; }));
  const DatagramView* views[640];
  std::size_t n = server->PeekBatch(views, 640);
  ASSERT_GT(n, 0u);
  EXPECT_EQ(views[n - 1]->nb, nullptr) << "low-water fallback should have copied";

  // The sibling queue still has a healthy pool: its flow stays zero-copy.
  EXPECT_GT(b_.netif->rx_pool(1)->available(), low_water);
  msg[0] = 0x11;
  ASSERT_EQ(flow[1]->SendTo(MakeIp(10, 0, 0, 2), 7000, msg), 16);
  std::size_t before = server->queued();
  ASSERT_TRUE(PumpUntil([&] { return server->queued() > before; }));
  n = server->PeekBatch(views, 640);
  EXPECT_NE(views[n - 1]->nb, nullptr) << "sibling queue lost zero-copy delivery";
  EXPECT_EQ(views[n - 1]->rx_queue, 1);
  server->ReleaseFront(server->queued());
}

}  // namespace
