// Tests for the uknetdev API: netbuf semantics, pools, virtio-net over real
// rings + wire, loopback, polling vs interrupt modes, backend cost accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "ukalloc/registry.h"
#include "uknetdev/loopback.h"
#include "uknetdev/netbuf.h"
#include "uknetdev/virtio_net.h"

namespace {

using namespace uknetdev;

class NetDevTest : public ::testing::Test {
 protected:
  NetDevTest() : mem_(32 << 20) {
    std::uint64_t heap_gpa = mem_.Carve(16 << 20, 4096);
    alloc_ = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                      mem_.At(heap_gpa, 16 << 20), 16 << 20);
    wire_ = std::make_unique<ukplat::Wire>(&clock_);
  }

  // Builds a started virtio-net device on |side| with an RX pool.
  std::unique_ptr<VirtioNet> MakeNic(int side, VirtioBackend backend,
                                     NetBufPool** rx_pool_out = nullptr) {
    VirtioNet::Config cfg;
    cfg.backend = backend;
    cfg.wire_side = side;
    cfg.mac = MacAddr{{2, 0, 0, 0, 0, static_cast<std::uint8_t>(side + 1)}};
    cfg.queue_size = 64;
    auto nic = std::make_unique<VirtioNet>(&mem_, &clock_, wire_.get(), cfg);
    EXPECT_TRUE(Ok(nic->Configure(DevConf{})));
    EXPECT_TRUE(Ok(nic->TxQueueSetup(0, TxQueueConf{})));
    auto pool = NetBufPool::Create(alloc_.get(), &mem_, 128, 2048);
    EXPECT_NE(pool, nullptr);
    RxQueueConf rxc;
    rxc.buffer_pool = pool.get();
    EXPECT_TRUE(Ok(nic->RxQueueSetup(0, rxc)));
    EXPECT_TRUE(Ok(nic->Start()));
    if (rx_pool_out != nullptr) {
      *rx_pool_out = pool.get();
    }
    pools_.push_back(std::move(pool));
    return nic;
  }

  NetBuf* MakeFrame(NetBufPool* pool, std::size_t len, std::uint8_t fill) {
    NetBuf* nb = pool->Alloc();
    if (nb == nullptr) {
      return nullptr;
    }
    nb->len = static_cast<std::uint32_t>(len);
    std::byte* d = mem_.At(nb->data_gpa(), len);
    std::memset(d, fill, len);
    return nb;
  }

  ukplat::MemRegion mem_;
  ukplat::Clock clock_;
  std::unique_ptr<ukalloc::Allocator> alloc_;
  std::unique_ptr<ukplat::Wire> wire_;
  std::vector<std::unique_ptr<NetBufPool>> pools_;
};

TEST_F(NetDevTest, NetBufPushPull) {
  auto pool = NetBufPool::Create(alloc_.get(), &mem_, 4, 1024, /*headroom=*/128);
  ASSERT_NE(pool, nullptr);
  NetBuf* nb = pool->Alloc();
  ASSERT_NE(nb, nullptr);
  EXPECT_EQ(nb->headroom, 128u);
  nb->len = 100;
  ASSERT_TRUE(nb->Push(14));  // prepend ethernet header
  EXPECT_EQ(nb->headroom, 114u);
  EXPECT_EQ(nb->len, 114u);
  ASSERT_TRUE(nb->Pull(14));
  EXPECT_EQ(nb->len, 100u);
  EXPECT_FALSE(nb->Pull(1000));
  nb->headroom = 4;
  EXPECT_FALSE(nb->Push(100));
  pool->Free(nb);
}

TEST_F(NetDevTest, PoolExhaustionAndReuse) {
  auto pool = NetBufPool::Create(alloc_.get(), &mem_, 2, 512);
  ASSERT_NE(pool, nullptr);
  NetBuf* a = pool->Alloc();
  NetBuf* b = pool->Alloc();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool->Alloc(), nullptr);
  pool->Free(a);
  EXPECT_EQ(pool->Alloc(), a);
}

TEST_F(NetDevTest, RefcountDefersPoolReturn) {
  auto pool = NetBufPool::Create(alloc_.get(), &mem_, 2, 512);
  ASSERT_NE(pool, nullptr);
  NetBuf* nb = pool->Alloc();
  ASSERT_NE(nb, nullptr);
  EXPECT_EQ(nb->refcnt, 1u);
  nb->Ref();  // second holder (e.g. a retransmission queue)
  EXPECT_EQ(nb->refcnt, 2u);
  pool->Free(nb);  // first holder lets go: buffer must NOT rejoin the pool
  EXPECT_EQ(nb->refcnt, 1u);
  EXPECT_EQ(pool->available(), 1u);
  pool->Free(nb);  // last holder: now it returns
  EXPECT_EQ(pool->available(), 2u);
  NetBuf* again = pool->Alloc();
  EXPECT_EQ(again, nb);  // LIFO reuse with a fresh reference count
  EXPECT_EQ(again->refcnt, 1u);
  pool->Free(again);
}

TEST_F(NetDevTest, AllocCounterTracksPoolChurnOnly) {
  auto pool = NetBufPool::Create(alloc_.get(), &mem_, 4, 512);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->total_allocs(), 0u);
  NetBuf* a = pool->Alloc();
  NetBuf* b = pool->AllocWithHeadroom(64);
  EXPECT_EQ(pool->total_allocs(), 2u);
  a->Ref();
  pool->Free(a);  // ref drop, not a pool transition
  pool->Free(a);
  pool->Free(b);
  EXPECT_EQ(pool->total_allocs(), 2u);  // frees never count
  pool->Free(pool->Alloc());
  EXPECT_EQ(pool->total_allocs(), 3u);
}

TEST_F(NetDevTest, RetainedTxBufSurvivesDriverCompletion) {
  // A driver's TX completion calls Free(); a buffer another layer retained
  // (refcount 2) must stay out of the free list until the retainer lets go —
  // this is what makes copy-free TCP retransmission safe.
  auto lo = std::make_unique<Loopback>(&mem_);
  auto rx_pool = NetBufPool::Create(alloc_.get(), &mem_, 8, 2048);
  RxQueueConf rxc;
  rxc.buffer_pool = rx_pool.get();
  ASSERT_TRUE(Ok(lo->RxQueueSetup(0, rxc)));
  ASSERT_TRUE(Ok(lo->Start()));
  auto tx_pool = NetBufPool::Create(alloc_.get(), &mem_, 4, 2048);
  NetBuf* nb = MakeFrame(tx_pool.get(), 64, 0x5a);
  ASSERT_NE(nb, nullptr);
  nb->Ref();  // retain across transmission
  NetBuf* pkts[1] = {nb};
  std::uint16_t cnt = 1;
  lo->TxBurst(0, pkts, &cnt);
  ASSERT_EQ(cnt, 1);
  EXPECT_EQ(nb->refcnt, 1u);               // driver released its reference
  EXPECT_EQ(tx_pool->available(), 3u);     // ...but the buffer is still ours
  EXPECT_EQ(std::to_integer<std::uint8_t>(*mem_.At(nb->data_gpa(), 1)), 0x5a);
  tx_pool->Free(nb);
  EXPECT_EQ(tx_pool->available(), 4u);
}

TEST_F(NetDevTest, PoolBuffersHaveValidGpas) {
  auto pool = NetBufPool::Create(alloc_.get(), &mem_, 8, 1024);
  ASSERT_NE(pool, nullptr);
  NetBuf* nb = pool->Alloc();
  ASSERT_NE(nb, nullptr);
  EXPECT_NE(mem_.At(nb->gpa, nb->capacity), nullptr);
  pool->Free(nb);
}

TEST_F(NetDevTest, VirtioTxReachesWire) {
  NetBufPool* tx_pool = nullptr;
  auto nic = MakeNic(0, VirtioBackend::kVhostNet, &tx_pool);
  NetBuf* nb = MakeFrame(tx_pool, 100, 0xAA);
  ASSERT_NE(nb, nullptr);
  std::uint16_t cnt = 1;
  int flags = nic->TxBurst(0, &nb, &cnt);
  EXPECT_EQ(cnt, 1);
  EXPECT_TRUE(flags & kStatusSuccess);
  EXPECT_EQ(nic->stats().tx_packets, 1u);
  // Frame is on the wire for side 1, with the virtio header stripped.
  auto frame = wire_->Receive(1);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->size(), 100u);
  EXPECT_EQ((*frame)[0], 0xAA);
}

TEST_F(NetDevTest, TwoNicsExchangeFrames) {
  NetBufPool* pool_a = nullptr;
  NetBufPool* pool_b = nullptr;
  auto nic_a = MakeNic(0, VirtioBackend::kVhostNet, &pool_a);
  auto nic_b = MakeNic(1, VirtioBackend::kVhostNet, &pool_b);

  NetBuf* nb = MakeFrame(pool_a, 200, 0x5C);
  std::uint16_t cnt = 1;
  nic_a->TxBurst(0, &nb, &cnt);
  ASSERT_EQ(cnt, 1);

  NetBuf* rx[4];
  std::uint16_t got = 4;
  nic_b->RxBurst(0, rx, &got);
  ASSERT_EQ(got, 1);
  EXPECT_EQ(rx[0]->len, 200u);
  const std::byte* data = rx[0]->Data(mem_);
  EXPECT_EQ(static_cast<std::uint8_t>(data[0]), 0x5C);
  EXPECT_EQ(static_cast<std::uint8_t>(data[199]), 0x5C);
  rx[0]->pool->Free(rx[0]);
  EXPECT_EQ(nic_b->stats().rx_packets, 1u);
}

TEST_F(NetDevTest, BurstOfManyPackets) {
  NetBufPool* pool_a = nullptr;
  NetBufPool* pool_b = nullptr;
  auto nic_a = MakeNic(0, VirtioBackend::kVhostUser, &pool_a);
  auto nic_b = MakeNic(1, VirtioBackend::kVhostUser, &pool_b);

  constexpr int kBatch = 16;
  NetBuf* batch[kBatch];
  for (int i = 0; i < kBatch; ++i) {
    batch[i] = MakeFrame(pool_a, 64, static_cast<std::uint8_t>(i));
    ASSERT_NE(batch[i], nullptr);
  }
  std::uint16_t cnt = kBatch;
  nic_a->TxBurst(0, batch, &cnt);
  EXPECT_EQ(cnt, kBatch);

  NetBuf* rx[kBatch];
  std::uint16_t got = kBatch;
  nic_b->RxBurst(0, rx, &got);
  EXPECT_EQ(got, kBatch);
  for (int i = 0; i < got; ++i) {
    const std::byte* d = rx[i]->Data(mem_);
    EXPECT_EQ(static_cast<std::uint8_t>(d[0]), static_cast<std::uint8_t>(i));
    rx[i]->pool->Free(rx[i]);
  }
}

TEST_F(NetDevTest, VhostNetKicksVhostUserDoesNot) {
  NetBufPool* pool_net = nullptr;
  auto nic_net = MakeNic(0, VirtioBackend::kVhostNet, &pool_net);
  NetBuf* nb = MakeFrame(pool_net, 64, 1);
  std::uint16_t cnt = 1;
  std::uint64_t cycles_before = clock_.cycles();
  nic_net->TxBurst(0, &nb, &cnt);
  std::uint64_t vhost_net_cost = clock_.cycles() - cycles_before;
  EXPECT_GE(nic_net->kicks(), 1u);

  NetBufPool* pool_user = nullptr;
  auto nic_user = MakeNic(0, VirtioBackend::kVhostUser, &pool_user);
  nb = MakeFrame(pool_user, 64, 1);
  cnt = 1;
  cycles_before = clock_.cycles();
  nic_user->TxBurst(0, &nb, &cnt);
  std::uint64_t vhost_user_cost = clock_.cycles() - cycles_before;
  EXPECT_EQ(nic_user->kicks(), 0u);
  // The Fig 19 premise: vhost-user's per-packet cost is far lower.
  EXPECT_LT(vhost_user_cost * 2, vhost_net_cost);
}

TEST_F(NetDevTest, TxBuffersReturnToPoolAfterCompletion) {
  NetBufPool* pool = nullptr;
  auto nic = MakeNic(0, VirtioBackend::kVhostNet, &pool);
  std::uint32_t avail_before = pool->available();
  for (int i = 0; i < 50; ++i) {
    NetBuf* nb = MakeFrame(pool, 64, 7);
    ASSERT_NE(nb, nullptr) << "pool leaked buffers at " << i;
    std::uint16_t cnt = 1;
    nic->TxBurst(0, &nb, &cnt);
    ASSERT_EQ(cnt, 1);
    wire_->Receive(1);  // drain the wire
  }
  EXPECT_EQ(pool->available(), avail_before);
}

TEST_F(NetDevTest, OversizeFrameDropped) {
  NetBufPool* pool = nullptr;
  auto nic = MakeNic(0, VirtioBackend::kVhostNet, &pool);
  NetBuf* nb = MakeFrame(pool, 1900, 1);  // over MTU+14
  ASSERT_NE(nb, nullptr);
  std::uint16_t cnt = 1;
  int flags = nic->TxBurst(0, &nb, &cnt);
  EXPECT_EQ(cnt, 0);
  EXPECT_TRUE(flags & kStatusUnderrun);
  EXPECT_EQ(nic->stats().tx_drops, 1u);
  pool->Free(nb);
}

TEST_F(NetDevTest, InterruptFiresOnceThenRearms) {
  NetBufPool* pool_a = nullptr;
  NetBufPool* pool_b = nullptr;
  auto nic_a = MakeNic(0, VirtioBackend::kVhostNet, &pool_a);
  auto nic_b = MakeNic(1, VirtioBackend::kVhostNet, &pool_b);

  int interrupts = 0;
  // Re-setup RX queue with a handler: use a fresh NIC configured for intr.
  VirtioNet::Config cfg;
  cfg.backend = VirtioBackend::kVhostNet;
  cfg.wire_side = 1;
  cfg.queue_size = 64;
  auto nic_intr = std::make_unique<VirtioNet>(&mem_, &clock_, wire_.get(), cfg);
  ASSERT_TRUE(Ok(nic_intr->Configure(DevConf{})));
  ASSERT_TRUE(Ok(nic_intr->TxQueueSetup(0, TxQueueConf{})));
  auto pool = NetBufPool::Create(alloc_.get(), &mem_, 64, 2048);
  RxQueueConf rxc;
  rxc.buffer_pool = pool.get();
  rxc.intr_handler = [&](std::uint16_t) { ++interrupts; };
  ASSERT_TRUE(Ok(nic_intr->RxQueueSetup(0, rxc)));
  ASSERT_TRUE(Ok(nic_intr->Start()));
  ASSERT_TRUE(Ok(nic_intr->RxIntrEnable(0)));

  // Two frames arrive before the guest polls: one interrupt only (storm
  // avoidance), further frames accumulate silently.
  for (int i = 0; i < 2; ++i) {
    NetBuf* nb = MakeFrame(pool_a, 64, 9);
    std::uint16_t cnt = 1;
    nic_a->TxBurst(0, &nb, &cnt);
    nic_intr->BackendPoll();
  }
  EXPECT_EQ(interrupts, 1);

  // Drain; the line re-arms; next frame interrupts again.
  NetBuf* rx[8];
  std::uint16_t got = 8;
  nic_intr->RxBurst(0, rx, &got);
  EXPECT_EQ(got, 2);
  for (int i = 0; i < got; ++i) {
    rx[i]->pool->Free(rx[i]);
  }
  NetBuf* nb = MakeFrame(pool_a, 64, 9);
  std::uint16_t cnt = 1;
  nic_a->TxBurst(0, &nb, &cnt);
  nic_intr->BackendPoll();
  EXPECT_EQ(interrupts, 2);
}

TEST_F(NetDevTest, LoopbackRoundTrip) {
  Loopback lo(&mem_);
  auto pool = NetBufPool::Create(alloc_.get(), &mem_, 32, 2048);
  RxQueueConf rxc;
  rxc.buffer_pool = pool.get();
  ASSERT_TRUE(Ok(lo.RxQueueSetup(0, rxc)));
  ASSERT_TRUE(Ok(lo.Start()));

  NetBuf* nb = MakeFrame(pool.get(), 80, 0x3D);
  std::uint16_t cnt = 1;
  lo.TxBurst(0, &nb, &cnt);
  ASSERT_EQ(cnt, 1);
  NetBuf* rx[2];
  std::uint16_t got = 2;
  lo.RxBurst(0, rx, &got);
  ASSERT_EQ(got, 1);
  EXPECT_EQ(rx[0]->len, 80u);
  EXPECT_EQ(static_cast<std::uint8_t>(rx[0]->Data(mem_)[40]), 0x3D);
  rx[0]->pool->Free(rx[0]);
}

TEST_F(NetDevTest, NetBufPrependAndTrimHeaderInPlace) {
  auto pool = NetBufPool::Create(alloc_.get(), &mem_, 4, 1024, /*headroom=*/64);
  ASSERT_NE(pool, nullptr);
  NetBuf* nb = pool->Alloc();
  ASSERT_NE(nb, nullptr);

  // Payload first, then headers prepended in place around it.
  std::uint8_t* body = nb->Append(mem_, 7);
  ASSERT_NE(body, nullptr);
  std::memcpy(body, "payload", 7);
  std::uint8_t* l4 = nb->PrependHeader(mem_, 4);
  ASSERT_NE(l4, nullptr);
  std::memcpy(l4, "UDP!", 4);
  std::uint8_t* l3 = nb->PrependHeader(mem_, 3);
  ASSERT_NE(l3, nullptr);
  std::memcpy(l3, "IP!", 3);
  EXPECT_EQ(nb->len, 14u);
  EXPECT_EQ(nb->headroom, 64u - 7u);

  // The assembled bytes are contiguous in the buffer — no copies were made.
  const std::uint8_t* bytes = nb->Bytes(mem_);
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(std::memcmp(bytes, "IP!UDP!payload", 14), 0);

  // RX mirror: trim the headers back off and the payload stays in place.
  EXPECT_TRUE(nb->TrimHeader(3));
  EXPECT_TRUE(nb->TrimHeader(4));
  EXPECT_EQ(nb->len, 7u);
  EXPECT_EQ(std::memcmp(nb->Bytes(mem_), "payload", 7), 0);

  // Exhausted headroom is refused without touching the buffer.
  EXPECT_EQ(nb->PrependHeader(mem_, 1024), nullptr);
  EXPECT_EQ(nb->len, 7u);
  pool->Free(nb);
}

TEST_F(NetDevTest, NetBufHeadroomReservationRoundTrip) {
  auto pool = NetBufPool::Create(alloc_.get(), &mem_, 2, 512, /*headroom=*/32);
  ASSERT_NE(pool, nullptr);

  NetBuf* nb = pool->AllocWithHeadroom(128);
  ASSERT_NE(nb, nullptr);
  EXPECT_EQ(nb->headroom, 128u);
  EXPECT_EQ(nb->tailroom(), 512u - 128u);

  // Tailroom is bounded by the reservation.
  EXPECT_NE(nb->Append(mem_, 512 - 128), nullptr);
  EXPECT_EQ(nb->Append(mem_, 1), nullptr);

  // ReserveHeadroom only applies to empty buffers.
  EXPECT_FALSE(nb->ReserveHeadroom(64));
  nb->len = 0;
  EXPECT_TRUE(nb->ReserveHeadroom(64));
  EXPECT_EQ(nb->headroom, 64u);

  // A reservation beyond the buffer size is refused.
  EXPECT_EQ(pool->AllocWithHeadroom(4096), nullptr);

  // Free/Alloc resets to the pool default.
  pool->Free(nb);
  nb = pool->Alloc();
  ASSERT_NE(nb, nullptr);
  EXPECT_EQ(nb->headroom, 32u);
  pool->Free(nb);
}

TEST_F(NetDevTest, LoopbackBurstPreservesOrderAndOwnership) {
  Loopback lo(&mem_);
  auto rx_pool = NetBufPool::Create(alloc_.get(), &mem_, 32, 2048);
  auto tx_pool = NetBufPool::Create(alloc_.get(), &mem_, 32, 2048);
  RxQueueConf rxc;
  rxc.buffer_pool = rx_pool.get();
  ASSERT_TRUE(Ok(lo.RxQueueSetup(0, rxc)));
  ASSERT_TRUE(Ok(lo.Start()));

  constexpr std::uint16_t kBurst = 8;
  const std::uint32_t tx_before = tx_pool->available();
  NetBuf* pkts[kBurst];
  for (std::uint16_t i = 0; i < kBurst; ++i) {
    pkts[i] = MakeFrame(tx_pool.get(), 64 + i, static_cast<std::uint8_t>(i + 1));
    ASSERT_NE(pkts[i], nullptr);
  }
  std::uint16_t cnt = kBurst;
  lo.TxBurst(0, pkts, &cnt);
  ASSERT_EQ(cnt, kBurst);
  // TX completion returned every buffer to its pool (driver-side ownership).
  EXPECT_EQ(tx_pool->available(), tx_before);

  // The RX burst must surface the whole batch in FIFO order.
  NetBuf* rx[kBurst];
  std::uint16_t got = kBurst;
  lo.RxBurst(0, rx, &got);
  ASSERT_EQ(got, kBurst);
  const std::uint32_t rx_free_after_burst = rx_pool->available();
  for (std::uint16_t i = 0; i < kBurst; ++i) {
    EXPECT_EQ(rx[i]->len, 64u + i);
    EXPECT_EQ(rx[i]->Bytes(mem_)[0], static_cast<std::uint8_t>(i + 1));
    EXPECT_EQ(rx[i]->pool, rx_pool.get());
  }
  // Ownership round-trip: releasing the burst restores the pool.
  for (std::uint16_t i = 0; i < kBurst; ++i) {
    rx[i]->pool->Free(rx[i]);
  }
  EXPECT_EQ(rx_pool->available(), rx_free_after_burst + kBurst);
}

TEST_F(NetDevTest, ApplicationOwnsMemoryDriverRefusesWithoutPool) {
  VirtioNet::Config cfg;
  auto nic = std::make_unique<VirtioNet>(&mem_, &clock_, wire_.get(), cfg);
  ASSERT_TRUE(Ok(nic->Configure(DevConf{})));
  ASSERT_TRUE(Ok(nic->TxQueueSetup(0, TxQueueConf{})));
  RxQueueConf rxc;  // no buffer pool: §3.1 says the app must provide memory
  EXPECT_EQ(nic->RxQueueSetup(0, rxc), ukarch::Status::kInval);
}

}  // namespace
