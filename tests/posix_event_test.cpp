// The unified readiness-event API, stack to apps: uknet edges (SocketEvents
// sinks), the posix poll/epoll layer's level-triggered semantics, fd-reuse
// hygiene, batched UDP TX, and the apps::EventLoop serving many concurrent
// connections from one blocked thread.
//
// The contract under test (see src/uknet/DATAPATH.md "Readiness events"):
//  * edges are raised from the demux/ACK/FIN paths (writable on send-window
//    reopen, hup on FIN with drained data still readable, err on RST);
//  * levels are derived from current socket state on every scan, so unread
//    data re-reports and -EAGAIN consumer loops stay correct;
//  * a blocked EpollWait wakes from its PollWait sleep on any registered
//    socket's edge (the RST case below);
//  * EpollWait rotates its scan start across calls (multi-fd fairness);
//  * Close clears blocking flags and epoll interest: a reused descriptor
//    number never delivers the old socket's events.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>

#include "net_harness.h"
#include "apps/event_loop.h"
#include "apps/redis.h"
#include "posix/api.h"
#include "uksched/scheduler.h"
#include "vfscore/vfs.h"

namespace {

using namespace uknet;
using netharness::Host;
using netharness::RawPeer;
using netharness::ZeroAllocGuard;

// ---- UDP / interest-list semantics over two hosts ---------------------------------

class PosixEventUdpTest : public ::testing::Test {
 protected:
  PosixEventUdpTest()
      : wire_(&clock_),
        a_(&clock_, &wire_, 0, MakeIp(10, 0, 0, 1)),
        b_(&clock_, &wire_, 1, MakeIp(10, 0, 0, 2)),
        api_(&clock_, &vfs_, b_.stack.get(), posix::DispatchMode::kDirectCall) {
    a_.netif->AddArpEntry(MakeIp(10, 0, 0, 2), b_.nic->mac());
    b_.netif->AddArpEntry(MakeIp(10, 0, 0, 1), a_.nic->mac());
  }

  void Pump(int rounds = 20) {
    for (int i = 0; i < rounds; ++i) {
      a_.stack->Poll();
      b_.stack->Poll();
    }
  }

  ukplat::Clock clock_;
  ukplat::Wire wire_;
  Host a_;
  Host b_;
  vfscore::Vfs vfs_;
  posix::PosixApi api_;
};

TEST_F(PosixEventUdpTest, LevelTriggeredReReportOfUnreadData) {
  int fd = api_.Socket(posix::SockType::kDgram);
  ASSERT_GE(fd, 3);
  ASSERT_EQ(api_.Bind(fd, 7), 0);
  int ep = api_.EpollCreate();
  ASSERT_GE(ep, 3);
  ASSERT_EQ(api_.EpollCtl(ep, posix::EpollOp::kAdd, fd, kEvtReadable), 0);

  auto client = a_.stack->UdpOpen();
  std::uint8_t msg[4] = {1, 2, 3, 4};
  ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 7, msg), 4);
  Pump();

  posix::EpollEvent out[4];
  ASSERT_EQ(api_.EpollWait(ep, out), 1);
  EXPECT_EQ(out[0].fd, fd);
  EXPECT_NE(out[0].events & kEvtReadable, 0u);
  // Level-triggered: the unread datagram re-reports on the next wait even
  // though no new edge arrived in between.
  ASSERT_EQ(api_.EpollWait(ep, out), 1);
  EXPECT_NE(out[0].events & kEvtReadable, 0u);
  // Drained: the level clears.
  std::uint8_t buf[16];
  Ip4Addr src_ip = 0;
  std::uint16_t src_port = 0;
  EXPECT_EQ(api_.RecvFrom(fd, buf, &src_ip, &src_port), 4);
  EXPECT_EQ(api_.EpollWait(ep, out), 0);
}

TEST_F(PosixEventUdpTest, PollScansLevelsAndAlwaysWritableUdp) {
  int fd1 = api_.Socket(posix::SockType::kDgram);
  int fd2 = api_.Socket(posix::SockType::kDgram);
  ASSERT_EQ(api_.Bind(fd1, 7), 0);
  ASSERT_EQ(api_.Bind(fd2, 8), 0);

  auto client = a_.stack->UdpOpen();
  std::uint8_t msg[2] = {9, 9};
  ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 7, msg), 2);
  Pump();

  posix::PollFd fds[3] = {{fd1, kEvtReadable, 0},
                          {fd2, kEvtReadable | kEvtWritable, 0},
                          {999, kEvtReadable, 0}};
  EXPECT_EQ(api_.Poll(fds), 3);
  EXPECT_EQ(fds[0].revents, kEvtReadable);
  EXPECT_EQ(fds[1].revents, kEvtWritable);  // datagram sockets never block sends
  EXPECT_EQ(fds[2].revents, kEvtErr);       // invalid fd reports, never hangs
}

TEST_F(PosixEventUdpTest, EpollWaitRotatesAcrossReadyFds) {
  int fds[3];
  for (int i = 0; i < 3; ++i) {
    fds[i] = api_.Socket(posix::SockType::kDgram);
    ASSERT_EQ(api_.Bind(fds[i], static_cast<std::uint16_t>(7 + i)), 0);
  }
  int ep = api_.EpollCreate();
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(api_.EpollCtl(ep, posix::EpollOp::kAdd, fds[i], kEvtReadable), 0);
  }
  auto client = a_.stack->UdpOpen();
  std::uint8_t msg[1] = {7};
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), static_cast<std::uint16_t>(7 + i),
                             msg), 1);
  }
  Pump();
  // All three stay ready (nothing is drained); a one-slot event array must
  // cycle through them instead of reporting the lowest fd three times.
  std::set<int> reported;
  for (int i = 0; i < 3; ++i) {
    posix::EpollEvent out[1];
    ASSERT_EQ(api_.EpollWait(ep, out), 1);
    reported.insert(out[0].fd);
  }
  EXPECT_EQ(reported.size(), 3u) << "EpollWait starved a ready descriptor";
}

TEST_F(PosixEventUdpTest, CloseClearsInterestAndReusedFdDeliversNothingStale) {
  int fd1 = api_.Socket(posix::SockType::kDgram);
  ASSERT_EQ(api_.Bind(fd1, 7), 0);
  int ep = api_.EpollCreate();
  ASSERT_EQ(api_.EpollCtl(ep, posix::EpollOp::kAdd, fd1, kEvtReadable), 0);
  ASSERT_EQ(api_.SetBlocking(fd1, true), 0);
  ASSERT_EQ(api_.Close(fd1), 0);

  // The number is reused for a different socket.
  int fd2 = api_.Socket(posix::SockType::kDgram);
  ASSERT_EQ(fd2, fd1) << "expected lowest-free reuse";
  EXPECT_FALSE(api_.IsBlocking(fd2)) << "blocking flag survived the reuse";
  ASSERT_EQ(api_.Bind(fd2, 8), 0);

  // Traffic for BOTH the old socket (still alive inside the stack, port 7)
  // and the new one (port 8).
  auto client = a_.stack->UdpOpen();
  std::uint8_t msg[1] = {1};
  ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 7, msg), 1);
  ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 8, msg), 1);
  Pump();

  // The detached old socket raised no edge into the reused slot, and the
  // stale interest entry (recorded against the old generation) is pruned —
  // the new socket was never EpollCtl'd, so nothing may be delivered.
  EXPECT_EQ(api_.fdtab().edges(fd2), 0u);
  posix::EpollEvent out[4];
  EXPECT_EQ(api_.EpollWait(ep, out), 0);
  // Re-adding the reused descriptor registers the NEW socket cleanly.
  ASSERT_EQ(api_.EpollCtl(ep, posix::EpollOp::kAdd, fd2, kEvtReadable), 0);
  ASSERT_EQ(api_.EpollWait(ep, out), 1);
  EXPECT_EQ(out[0].fd, fd2);
}

TEST_F(PosixEventUdpTest, CloseOfDupedFdRehomesSinkToSurvivor) {
  // A socket has one sink slot. Closing one of two dup'd descriptors must
  // move edge delivery to the surviving watcher, not silently kill it.
  int fd = api_.Socket(posix::SockType::kDgram);
  ASSERT_EQ(api_.Bind(fd, 7), 0);
  ASSERT_TRUE(api_.fdtab().Watch(fd));
  const int dup = 12;
  ASSERT_EQ(api_.fdtab().Dup2(fd, dup), dup);
  ASSERT_TRUE(api_.fdtab().Watch(dup));
  ASSERT_EQ(api_.Close(fd), 0);

  auto client = a_.stack->UdpOpen();
  std::uint8_t msg[1] = {3};
  ASSERT_EQ(client->SendTo(MakeIp(10, 0, 0, 2), 7, msg), 1);
  Pump();
  EXPECT_NE(api_.fdtab().edges(dup) & kEvtReadable, 0u)
      << "edge delivery died with the closed descriptor";
}

TEST_F(PosixEventUdpTest, EpollCtlContract) {
  int fd = api_.Socket(posix::SockType::kDgram);
  ASSERT_EQ(api_.Bind(fd, 7), 0);
  int ep = api_.EpollCreate();
  EXPECT_EQ(api_.EpollCtl(ep, posix::EpollOp::kMod, fd, kEvtReadable), -2);  // ENOENT
  EXPECT_EQ(api_.EpollCtl(ep, posix::EpollOp::kAdd, fd, kEvtReadable), 0);
  EXPECT_EQ(api_.EpollCtl(ep, posix::EpollOp::kAdd, fd, kEvtReadable), -17);  // EEXIST
  EXPECT_EQ(api_.EpollCtl(ep, posix::EpollOp::kMod, fd, kEvtReadable | kEvtWritable), 0);
  EXPECT_EQ(api_.EpollCtl(ep, posix::EpollOp::kDel, fd, 0), 0);
  EXPECT_EQ(api_.EpollCtl(ep, posix::EpollOp::kDel, fd, 0), -2);
  EXPECT_EQ(api_.EpollCtl(ep, posix::EpollOp::kAdd, 999, kEvtReadable), -9);  // EBADF
  EXPECT_EQ(api_.EpollCtl(fd, posix::EpollOp::kAdd, ep, kEvtReadable), -9);
}

// ---- batched UDP TX (NetIf::SendIpBatch / UdpSocket::SendToBatch) -----------------

TEST_F(PosixEventUdpTest, SendToBatchDeliversWholeBatchInOrder) {
  auto server = b_.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(7)));
  auto client = a_.stack->UdpOpen();

  constexpr std::size_t kBatch = 8;
  std::uint8_t payloads[kBatch][4];
  UdpSocket::DatagramVec vecs[kBatch];
  for (std::size_t i = 0; i < kBatch; ++i) {
    payloads[i][0] = static_cast<std::uint8_t>(i);
    payloads[i][1] = 0x5a;
    vecs[i] = {payloads[i], 4};
  }
  EXPECT_EQ(client->SendToBatch(MakeIp(10, 0, 0, 2), 7, vecs),
            static_cast<std::int64_t>(kBatch));
  Pump();
  for (std::size_t i = 0; i < kBatch; ++i) {
    auto dg = server->RecvFrom();
    ASSERT_TRUE(dg.has_value()) << i;
    EXPECT_EQ(dg->payload[0], static_cast<std::uint8_t>(i));  // order preserved
  }
}

TEST_F(PosixEventUdpTest, SendToBatchParksBehindArpAndFlushes) {
  // A fresh destination with no ARP entry: the whole batch must park behind
  // one ARP request and flush on resolution (no datagram silently lost).
  ukplat::Clock clock;
  ukplat::Wire wire(&clock);
  Host a(&clock, &wire, 0, MakeIp(10, 0, 0, 1));
  Host b(&clock, &wire, 1, MakeIp(10, 0, 0, 2));
  auto server = b.stack->UdpOpen();
  ASSERT_TRUE(Ok(server->Bind(7)));
  auto client = a.stack->UdpOpen();

  constexpr std::size_t kBatch = 6;
  std::uint8_t payload[2] = {0xaa, 0xbb};
  UdpSocket::DatagramVec vecs[kBatch];
  for (auto& v : vecs) {
    v = {payload, 2};
  }
  EXPECT_EQ(client->SendToBatch(MakeIp(10, 0, 0, 2), 7, vecs),
            static_cast<std::int64_t>(kBatch));
  for (int i = 0; i < 30; ++i) {
    a.stack->Poll();
    b.stack->Poll();
  }
  EXPECT_EQ(server->queued(), kBatch);
}

// ---- TCP readiness edges against a raw peer ---------------------------------------

class EpollTcpTest : public netharness::RawPeerTest {
 protected:
  EpollTcpTest()
      : api_(&clock_, &vfs_, host_.stack.get(), posix::DispatchMode::kDirectCall) {}

  // Server-side handshake: the raw peer connects to the host's listener on
  // |port| from |peer_port| (peer ISS 1000). Returns the accepted fd and the
  // host's ISS through |host_iss|.
  int AcceptFrom(int lfd, std::uint16_t port, std::uint16_t peer_port,
                 std::uint32_t* host_iss) {
    peer_.SendTcp(peer_port, port, kTcpSyn, 1000, 0, 65535);
    Pump();
    EXPECT_FALSE(peer_.segs.empty());
    const auto& synack = peer_.segs.back();
    EXPECT_EQ(synack.hdr.flags, kTcpSyn | kTcpAck);
    *host_iss = synack.hdr.seq;
    peer_.SendTcp(peer_port, port, kTcpAck, 1001, *host_iss + 1, 65535);
    Pump();
    return api_.Accept(lfd);
  }

  vfscore::Vfs vfs_;
  posix::PosixApi api_;
};

TEST_F(EpollTcpTest, WritableEdgeAfterSendWindowReopen) {
  int lfd = api_.Socket(posix::SockType::kStream);
  ASSERT_EQ(api_.Bind(lfd, 80), 0);
  ASSERT_EQ(api_.Listen(lfd), 0);
  int ep = api_.EpollCreate();
  std::uint32_t iss = 0;
  int cfd = AcceptFrom(lfd, 80, 5555, &iss);
  ASSERT_GE(cfd, 3);
  ASSERT_EQ(api_.EpollCtl(ep, posix::EpollOp::kAdd, cfd,
                          kEvtReadable | kEvtWritable), 0);

  posix::EpollEvent out[2];
  ASSERT_EQ(api_.EpollWait(ep, out), 1);
  EXPECT_NE(out[0].events & kEvtWritable, 0u) << "fresh connection not writable";

  // Fill the 64 KB send buffer; the peer never ACKs, so space hits zero.
  std::uint8_t chunk[8192];
  std::memset(chunk, 'w', sizeof(chunk));
  for (;;) {
    std::int64_t n = api_.Send(cfd, chunk);
    Pump(2);
    if (n <= 0) {
      break;
    }
  }
  EXPECT_EQ(api_.EpollWait(ep, out), 0) << "full send buffer reported writable";

  // One cumulative ACK releases the first MSS segment: that is the
  // send-window-reopen edge, and the level must flip back to writable.
  peer_.SendTcp(5555, 80, kTcpAck, 1001, iss + 1 + TcpSocket::kMss, 65535);
  Pump();
  EXPECT_NE(api_.fdtab().edges(cfd) & kEvtWritable, 0u)
      << "no writable edge accumulated on the reopen";
  ASSERT_EQ(api_.EpollWait(ep, out), 1);
  EXPECT_NE(out[0].events & kEvtWritable, 0u);
}

TEST_F(EpollTcpTest, HupOnPeerFinWithDrainedDataStillReadable) {
  int lfd = api_.Socket(posix::SockType::kStream);
  ASSERT_EQ(api_.Bind(lfd, 80), 0);
  ASSERT_EQ(api_.Listen(lfd), 0);
  int ep = api_.EpollCreate();
  std::uint32_t iss = 0;
  int cfd = AcceptFrom(lfd, 80, 5556, &iss);
  ASSERT_GE(cfd, 3);
  ASSERT_EQ(api_.EpollCtl(ep, posix::EpollOp::kAdd, cfd, kEvtReadable), 0);

  // Data, then FIN in the same flight: the consumer must see readable AND
  // hup, drain the bytes, and only then observe EOF.
  std::uint8_t data[3] = {'e', 'o', 'f'};
  peer_.SendTcp(5556, 80, kTcpAck | kTcpPsh, 1001, iss + 1, 65535, data);
  peer_.SendTcp(5556, 80, kTcpFin | kTcpAck, 1004, iss + 1, 65535);
  Pump();

  posix::EpollEvent out[2];
  ASSERT_EQ(api_.EpollWait(ep, out), 1);
  EXPECT_NE(out[0].events & kEvtReadable, 0u);
  EXPECT_NE(out[0].events & kEvtHup, 0u);

  std::uint8_t buf[16];
  EXPECT_EQ(api_.Recv(cfd, buf), 3);  // queued data first
  EXPECT_EQ(api_.Recv(cfd, buf), 0);  // then the orderly EOF
  // Level semantics after drain: EOF keeps the socket readable (a recv
  // returns 0 immediately), and the hup level persists.
  ASSERT_EQ(api_.EpollWait(ep, out), 1);
  EXPECT_NE(out[0].events & kEvtHup, 0u);
}

TEST_F(EpollTcpTest, CloseOfDupedTcpFdDoesNotFinSurvivor) {
  int lfd = api_.Socket(posix::SockType::kStream);
  ASSERT_EQ(api_.Bind(lfd, 80), 0);
  ASSERT_EQ(api_.Listen(lfd), 0);
  std::uint32_t iss = 0;
  int cfd = AcceptFrom(lfd, 80, 5558, &iss);
  ASSERT_GE(cfd, 3);
  // Two descriptors, one open description: closing one must not tear the
  // shared connection down (POSIX dup semantics).
  const int dup = 30;
  ASSERT_EQ(api_.fdtab().Dup2(cfd, dup), dup);
  ASSERT_EQ(api_.Close(cfd), 0);
  auto sock = api_.fdtab().Get<uknet::TcpSocket>(dup);
  ASSERT_NE(sock, nullptr);
  EXPECT_EQ(sock->state(), TcpState::kEstablished)
      << "closing one dup'd fd FIN'd the survivor's connection";
  Pump();
  for (const auto& seg : peer_.segs) {
    EXPECT_EQ(seg.hdr.flags & kTcpFin, 0) << "a FIN reached the wire";
  }
}

TEST_F(EpollTcpTest, RstWakesBlockedEpollWait) {
  auto sched_owner = uksched::MakeScheduler(host_.alloc.get(), &clock_);
  auto& sched = *sched_owner;
  host_.stack->SetScheduler(&sched);

  int lfd = api_.Socket(posix::SockType::kStream);
  ASSERT_EQ(api_.Bind(lfd, 80), 0);
  ASSERT_EQ(api_.Listen(lfd), 0);
  int ep = api_.EpollCreate();
  std::uint32_t iss = 0;
  int cfd = AcceptFrom(lfd, 80, 5557, &iss);
  ASSERT_GE(cfd, 3);
  ASSERT_EQ(api_.EpollCtl(ep, posix::EpollOp::kAdd, cfd, kEvtReadable), 0);

  int woke_with = -1;
  posix::EpollEvent out[2];
  sched.CreateThread("waiter", [&] {
    // No timeout: only an event may end this sleep (it parks in PollWait).
    woke_with = api_.EpollWait(ep, out, posix::PosixApi::kNoTimeout);
  });
  sched.CreateThread("killer", [&] {
    EXPECT_EQ(woke_with, -1) << "EpollWait returned before any event";
    EXPECT_GE(host_.stack->wait_stats().blocked_waits, 1u);
    peer_.SendTcp(5557, 80, kTcpRst, 1001, iss + 1, 65535);
    sched.Yield();
    EXPECT_EQ(woke_with, 1) << "RST did not wake the blocked EpollWait";
  });
  EXPECT_EQ(sched.Run(), 0u);
  ASSERT_EQ(woke_with, 1);
  EXPECT_EQ(out[0].fd, cfd);
  EXPECT_NE(out[0].events & kEvtErr, 0u);
  EXPECT_GE(host_.stack->wait_stats().frame_wakeups, 1u);
}

// ---- one event-loop thread, many connections (the acceptance gate) ----------------

TEST(EventLoopScale, Serves64ConnectionsFromOneBlockedThread) {
  ukplat::Clock clock;
  ukplat::Wire::Config wire_cfg;
  wire_cfg.queue_depth = 4096;
  ukplat::Wire wire(&clock, wire_cfg);
  Host a(&clock, &wire, 0, MakeIp(10, 0, 0, 1), /*queues=*/1, /*pool_bufs=*/512);
  Host b(&clock, &wire, 1, MakeIp(10, 0, 0, 2), /*queues=*/1, /*pool_bufs=*/512);
  a.netif->AddArpEntry(MakeIp(10, 0, 0, 2), b.nic->mac());
  b.netif->AddArpEntry(MakeIp(10, 0, 0, 1), a.nic->mac());
  auto sched_owner = uksched::MakeScheduler(b.alloc.get(), &clock);
  auto& sched = *sched_owner;
  b.stack->SetScheduler(&sched);
  vfscore::Vfs vfs;
  posix::PosixApi api(&clock, &vfs, b.stack.get(), posix::DispatchMode::kDirectCall,
                      &sched);

  apps::RedisServer server(&api, b.alloc.get(), 6379);
  ASSERT_TRUE(server.Start());

  constexpr int kConns = 64;
  apps::RedisBenchClient::Config cfg;
  cfg.connections = kConns;
  cfg.pipeline = 4;
  cfg.use_set = false;  // GET workload: zero value-store allocations
  apps::RedisBenchClient bench(a.stack.get(), MakeIp(10, 0, 0, 2), 6379, cfg);

  bool done = false;
  std::uint64_t idle_growth = 99;
  ZeroAllocGuard guard({}, b.alloc.get());

  sched.CreateThread("redis-server", [&] {
    // ONE thread, one EpollWait over the listener + all 64 connections; the
    // bounded slice only lets the loop observe |done|. Busy turns yield so
    // the bench thread can ACK; idle turns block in EpollWait.
    while (!done) {
      server.PumpWait(500'000'000);
      sched.Yield();
    }
  });
  sched.CreateThread("bench", [&] {
    auto pump = [&] {
      a.stack->Poll();
      sched.Yield();
    };
    ASSERT_TRUE(bench.ConnectAll(pump));
    for (int i = 0; i < 60; ++i) {  // warmup: conns, parser buffers, out strings
      bench.PumpOnce();
      pump();
    }
    guard.Rebase();
    for (int i = 0; i < 120; ++i) {
      bench.PumpOnce();
      pump();
    }
    // Steady state allocates nothing from the unikernel heap: views over the
    // parser buffer, in-place reply encoders, reused event arrays.
    guard.ExpectHeapSteady("64-conn event-loop redis steady state");
    // Idle window: the whole server must be parked in EpollWait, not
    // spinning — zero poll iterations while the client stays silent. A few
    // settle yields first: the server's last busy turn ends with the
    // (documented) arm-then-check drains on its way INTO the sleep, which
    // are entry cost, not idle spinning.
    for (int i = 0; i < 4; ++i) {
      sched.Yield();
    }
    const std::uint64_t polls_before = b.stack->wait_stats().poll_iterations;
    for (int i = 0; i < 100; ++i) {
      clock.Charge(10'000);
      sched.Yield();
    }
    idle_growth = b.stack->wait_stats().poll_iterations - polls_before;
    done = true;
    // Final bursts wake the server so it observes |done|, and keep ACKing
    // its last replies so it retires without data in flight.
    for (int i = 0; i < 20; ++i) {
      bench.PumpOnce();
      pump();
    }
  });
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_EQ(server.connections(), static_cast<std::size_t>(kConns));
  EXPECT_GT(bench.replies(), static_cast<std::uint64_t>(kConns) * 4);
  EXPECT_EQ(idle_growth, 0u) << "the event loop spun while idle";
  EXPECT_GE(b.stack->wait_stats().blocked_waits, 1u);
  EXPECT_GE(b.stack->wait_stats().frame_wakeups, 1u);
}

}  // namespace
