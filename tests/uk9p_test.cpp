// Tests for the 9P stack: codec round-trips, server semantics, virtio
// transport, and the full 9pfs-through-vfscore path (Fig 20 substrate).
#include <gtest/gtest.h>

#include <cstring>

#include "uk9p/ninepfs.h"
#include "uk9p/proto.h"
#include "uk9p/server.h"
#include "uk9p/transport.h"
#include "vfscore/vfs.h"

namespace {

using namespace uk9p;

TEST(Proto, WriterReaderRoundTrip) {
  Writer w;
  w.Begin(MsgType::kTwalk, 42);
  w.U32(7);
  w.U64(0xdeadbeefcafef00dull);
  w.Str("filename.txt");
  std::vector<std::uint8_t> msg = w.Finish();

  auto hdr = ParseHeader(msg);
  ASSERT_TRUE(hdr.has_value());
  EXPECT_EQ(hdr->type, MsgType::kTwalk);
  EXPECT_EQ(hdr->tag, 42);
  EXPECT_EQ(hdr->size, msg.size());

  Reader r(Payload(msg));
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.U64(), 0xdeadbeefcafef00dull);
  EXPECT_EQ(r.Str(), "filename.txt");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Proto, ReaderLatchesErrorsPastEnd) {
  std::vector<std::uint8_t> tiny = {1, 2};
  Reader r(tiny);
  EXPECT_EQ(r.U32(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U64(), 0u);  // still failing, no crash
}

TEST(Proto, ParseHeaderRejectsTruncated) {
  Writer w;
  w.Begin(MsgType::kTclunk, 1);
  w.U32(5);
  std::vector<std::uint8_t> msg = w.Finish();
  msg.pop_back();  // size now claims more than buffer holds
  EXPECT_FALSE(ParseHeader(msg).has_value());
  EXPECT_FALSE(ParseHeader(std::span<const std::uint8_t>()).has_value());
}

// Direct server tests (no transport): drive the message handlers.
class ServerTest : public ::testing::Test {
 protected:
  ServerTest() {
    server_.root().AddFile("readme.txt", {'d', 'o', 'c'});
    HostNode* sub = server_.root().AddDir("sub");
    sub->AddFile("inner.bin", std::vector<std::uint8_t>(100, 9));
  }

  std::vector<std::uint8_t> Send(Writer& w) { return server_.Handle(w.Finish()); }

  MsgType TypeOf(const std::vector<std::uint8_t>& reply) {
    auto hdr = ParseHeader(reply);
    return hdr.has_value() ? hdr->type : MsgType::kRerror;
  }

  void StartSession() {
    Writer v;
    v.Begin(MsgType::kTversion, kNoTag);
    v.U32(65536);
    v.Str("9P2000");
    ASSERT_EQ(TypeOf(Send(v)), MsgType::kRversion);
    Writer a;
    a.Begin(MsgType::kTattach, 1);
    a.U32(0);
    a.U32(kNoFid);
    a.Str("test");
    a.Str("/");
    ASSERT_EQ(TypeOf(Send(a)), MsgType::kRattach);
  }

  Server server_;
};

TEST_F(ServerTest, VersionNegotiatesMsize) {
  Writer v;
  v.Begin(MsgType::kTversion, kNoTag);
  v.U32(8192);  // smaller than the server's default
  v.Str("9P2000");
  auto reply = Send(v);
  ASSERT_EQ(TypeOf(reply), MsgType::kRversion);
  Reader r(Payload(reply));
  EXPECT_EQ(r.U32(), 8192u);
}

TEST_F(ServerTest, WalkToNestedFile) {
  StartSession();
  Writer w;
  w.Begin(MsgType::kTwalk, 2);
  w.U32(0);
  w.U32(1);
  w.U16(2);
  w.Str("sub");
  w.Str("inner.bin");
  auto reply = Send(w);
  ASSERT_EQ(TypeOf(reply), MsgType::kRwalk);
  Reader r(Payload(reply));
  EXPECT_EQ(r.U16(), 2u);
}

TEST_F(ServerTest, WalkMissingIsError) {
  StartSession();
  Writer w;
  w.Begin(MsgType::kTwalk, 2);
  w.U32(0);
  w.U32(1);
  w.U16(1);
  w.Str("ghost");
  EXPECT_EQ(TypeOf(Send(w)), MsgType::kRerror);
}

TEST_F(ServerTest, UnknownFidIsError) {
  StartSession();
  Writer w;
  w.Begin(MsgType::kTread, 3);
  w.U32(99);
  w.U64(0);
  w.U32(10);
  EXPECT_EQ(TypeOf(Send(w)), MsgType::kRerror);
}

// Full stack: client -> virtio transport -> server.
class NinePfsTest : public ::testing::Test {
 protected:
  NinePfsTest() : mem_(16 << 20) {
    server_.root().AddFile("hello.txt", {'9', 'p'});
    server_.root().AddDir("dir");
    transport_ = std::make_unique<Virtio9pTransport>(&mem_, &clock_, &server_);
    EXPECT_TRUE(transport_->ok());
    client_ = std::make_unique<Client>(transport_.get());
    fs_ = std::make_unique<NinePFs>(client_.get());
    EXPECT_TRUE(Ok(vfs_.Mount("/", fs_.get())));
  }

  ukplat::MemRegion mem_;
  ukplat::Clock clock_;
  Server server_;
  std::unique_ptr<Virtio9pTransport> transport_;
  std::unique_ptr<Client> client_;
  std::unique_ptr<NinePFs> fs_;
  vfscore::Vfs vfs_;
};

TEST_F(NinePfsTest, ReadsHostFile) {
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs_.Open("/hello.txt", vfscore::kRead, &f)));
  char buf[16] = {};
  EXPECT_EQ(f->Read(std::as_writable_bytes(std::span(buf))), 2);
  EXPECT_EQ(buf[0], '9');
  EXPECT_EQ(buf[1], 'p');
}

TEST_F(NinePfsTest, WritesPropagateToHost) {
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs_.Open("/new.txt", vfscore::kWrite | vfscore::kCreate, &f)));
  std::string_view text = "written through 9p";
  EXPECT_EQ(f->Write(std::as_bytes(std::span(text.data(), text.size()))),
            static_cast<std::int64_t>(text.size()));
  // Verify on the host side.
  HostNode* node = server_.root().children.at("new.txt").get();
  EXPECT_EQ(std::string(node->data.begin(), node->data.end()), text);
}

TEST_F(NinePfsTest, LargeIoSplitsAtIounit) {
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs_.Open("/big.bin", vfscore::kWrite | vfscore::kRead | vfscore::kCreate,
                           &f)));
  std::vector<std::byte> data(200 * 1024);  // > 64K msize, forces split RPCs
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i % 127);
  }
  EXPECT_EQ(f->Write(std::span<const std::byte>(data)),
            static_cast<std::int64_t>(data.size()));
  f->Seek(0, vfscore::File::Whence::kSet);
  std::vector<std::byte> back(data.size());
  EXPECT_EQ(f->Read(std::span<std::byte>(back)), static_cast<std::int64_t>(back.size()));
  EXPECT_EQ(back, data);
  EXPECT_GT(transport_->rpcs(), 6u);  // split into several Twrite/Tread
}

TEST_F(NinePfsTest, DirectoryListing) {
  std::vector<vfscore::DirEntry> entries;
  ASSERT_TRUE(Ok(vfs_.ReadDir("/", &entries)));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "dir");
  EXPECT_EQ(entries[0].type, vfscore::NodeType::kDirectory);
  EXPECT_EQ(entries[1].name, "hello.txt");
}

TEST_F(NinePfsTest, StatAndTruncate) {
  vfscore::NodeStat st;
  ASSERT_TRUE(Ok(vfs_.Stat("/hello.txt", &st)));
  EXPECT_EQ(st.size, 2u);
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs_.Open("/hello.txt", vfscore::kWrite | vfscore::kTrunc, &f)));
  ASSERT_TRUE(Ok(vfs_.Stat("/hello.txt", &st)));
  EXPECT_EQ(st.size, 0u);
}

TEST_F(NinePfsTest, RemoveFile) {
  ASSERT_TRUE(Ok(vfs_.Unlink("/hello.txt")));
  vfscore::NodeStat st;
  EXPECT_EQ(vfs_.Stat("/hello.txt", &st), ukarch::Status::kNoEnt);
  EXPECT_FALSE(server_.root().children.contains("hello.txt"));
}

TEST_F(NinePfsTest, MkdirThroughClient) {
  ASSERT_TRUE(Ok(vfs_.Mkdir("/made")));
  EXPECT_TRUE(server_.root().children.at("made")->is_dir);
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs_.Open("/made/child", vfscore::kWrite | vfscore::kCreate, &f)));
  EXPECT_EQ(f->Write(std::as_bytes(std::span("zz", 2))), 2);
}

TEST_F(NinePfsTest, RpcChargesVirtualCosts) {
  std::uint64_t before = clock_.cycles();
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs_.Open("/hello.txt", vfscore::kRead, &f)));
  char buf[4];
  f->Read(std::as_writable_bytes(std::span(buf)));
  // Each RPC costs at least a VM exit + IRQ injection.
  EXPECT_GT(clock_.cycles() - before, clock_.model().vm_exit);
}

}  // namespace
