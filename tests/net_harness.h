// tests/net_harness.h - shared wire plumbing for network tests.
//
// Extracted from uknet_test.cpp so the TCP, UDP, posix and multi-queue suites
// stop duplicating host construction and raw-frame injection:
//
//  * Host          — guest RAM + allocator + virtio-net + NetStack on one wire
//                    side, with a configurable number of RSS queue pairs;
//  * TwoHostTest   — two Hosts on a clean wire (client/server scenarios);
//  * LossyTest     — two Hosts on a dropping wire (retransmission scenarios);
//  * RawPeer       — a hand-rolled endpoint with full control over every
//                    frame the host sees (teardown/loss regression tests);
//  * RawPeerTest   — Host + RawPeer, ARP pre-resolved, handshake helper;
//  * RawRxTest     — Host + raw L3 frame injection (parser hardening);
//  * ZeroAllocGuard— snapshots netbuf-pool churn counters and heap allocator
//                    stats so tests can assert the zero-alloc invariants
//                    (the Fig 18 regression gate).
#ifndef TESTS_NET_HARNESS_H_
#define TESTS_NET_HARNESS_H_

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "ukalloc/registry.h"
#include "uknet/stack.h"
#include "uknetdev/virtio_net.h"

namespace netharness {

using uknet::Ip4Addr;
using uknet::MakeIp;
using uknet::NetIf;
using uknet::NetStack;

inline void PutU16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

// A simulated host: guest RAM, allocator, virtio-net on one wire side, stack.
// |queues| configures that many RSS queue pairs end to end (driver rings,
// NetIf pools, demux sharding).
struct Host {
  Host(ukplat::Clock* clock, ukplat::Wire* wire, int side, Ip4Addr ip,
       std::uint16_t queues = 1, std::uint32_t pool_bufs = 256)
      : mem(32 << 20) {
    std::uint64_t heap_gpa = mem.Carve(24 << 20, 4096);
    alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf, mem.At(heap_gpa, 24 << 20),
                                     24 << 20);
    uknetdev::VirtioNet::Config cfg;
    cfg.backend = uknetdev::VirtioBackend::kVhostUser;
    cfg.wire_side = side;
    cfg.mac = uknetdev::MacAddr{{2, 0, 0, 0, 0, static_cast<std::uint8_t>(side + 1)}};
    cfg.queue_size = 128;
    nic = std::make_unique<uknetdev::VirtioNet>(&mem, clock, wire, cfg);
    stack = std::make_unique<NetStack>(&mem, clock, alloc.get());
    NetIf::Config ifcfg;
    ifcfg.ip = ip;
    ifcfg.queues = queues;
    ifcfg.tx_pool_bufs = pool_bufs;
    ifcfg.rx_pool_bufs = pool_bufs;
    netif = stack->AddInterface(nic.get(), ifcfg);
  }

  ukplat::MemRegion mem;
  std::unique_ptr<ukalloc::Allocator> alloc;
  std::unique_ptr<uknetdev::VirtioNet> nic;
  std::unique_ptr<NetStack> stack;
  NetIf* netif = nullptr;
};

// Snapshots pool alloc counters (and optionally the heap allocator) so tests
// assert the zero-alloc invariants: paths that must reuse retained buffers
// show flat pool churn; steady-state loops show a balanced heap.
class ZeroAllocGuard {
 public:
  explicit ZeroAllocGuard(std::vector<const uknetdev::NetBufPool*> pools,
                          const ukalloc::Allocator* heap = nullptr)
      : pools_(std::move(pools)), heap_(heap) {
    Rebase();
  }

  void Rebase() {
    pool_base_.clear();
    for (const uknetdev::NetBufPool* p : pools_) {
      pool_base_.push_back(p != nullptr ? p->total_allocs() : 0);
    }
    if (heap_ != nullptr) {
      heap_mallocs_base_ = heap_->stats().malloc_calls;
      heap_bytes_base_ = heap_->stats().bytes_in_use;
    }
  }

  // Pool churn since the snapshot (sum across pools, or one pool).
  std::uint64_t pool_allocs() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < pools_.size(); ++i) {
      total += pool_allocs(i);
    }
    return total;
  }
  std::uint64_t pool_allocs(std::size_t i) const {
    return pools_[i] != nullptr ? pools_[i]->total_allocs() - pool_base_[i] : 0;
  }

  std::uint64_t heap_mallocs() const {
    return heap_ != nullptr ? heap_->stats().malloc_calls - heap_mallocs_base_ : 0;
  }
  std::int64_t heap_bytes() const {
    return heap_ != nullptr ? static_cast<std::int64_t>(heap_->stats().bytes_in_use) -
                                  static_cast<std::int64_t>(heap_bytes_base_)
                            : 0;
  }

  // The retained-buffer invariant: the watched pools saw zero Alloc calls
  // since the snapshot (retransmits, in-place replies).
  void ExpectPoolFlat(const char* what) const {
    EXPECT_EQ(pool_allocs(), 0u) << what << ": netbuf pool churned";
  }
  // The steady-state invariant: no heap growth, and at most |max_mallocs|
  // malloc calls (0 for strictly allocation-free paths; small bounds cover
  // container-chunk recycling that mallocs and frees in balance).
  void ExpectHeapSteady(const char* what, std::uint64_t max_mallocs = 0) const {
    EXPECT_EQ(heap_bytes(), 0) << what << ": heap bytes_in_use drifted";
    EXPECT_LE(heap_mallocs(), max_mallocs) << what << ": heap alloc on the hot path";
  }

 private:
  std::vector<const uknetdev::NetBufPool*> pools_;
  const ukalloc::Allocator* heap_;
  std::vector<std::uint64_t> pool_base_;
  std::uint64_t heap_mallocs_base_ = 0;
  std::uint64_t heap_bytes_base_ = 0;
};

// Two hosts on a clean wire. Derive and call the (queues, pool_bufs)
// overload for multi-queue topologies.
class TwoHostTest : public ::testing::Test {
 protected:
  TwoHostTest() : TwoHostTest(1, 256) {}
  TwoHostTest(std::uint16_t queues, std::uint32_t pool_bufs)
      : wire_(&clock_),
        a_(&clock_, &wire_, 0, MakeIp(10, 0, 0, 1), queues, pool_bufs),
        b_(&clock_, &wire_, 1, MakeIp(10, 0, 0, 2), queues, pool_bufs) {}

  // Pumps both stacks until |pred| holds.
  bool PumpUntil(const std::function<bool()>& pred, int iters = 2000) {
    for (int i = 0; i < iters; ++i) {
      if (pred()) {
        return true;
      }
      a_.stack->Poll();
      b_.stack->Poll();
    }
    return pred();
  }

  ukplat::Clock clock_;
  ukplat::Wire wire_;
  Host a_;
  Host b_;
};

// Lossy wire: TCP must retransmit and still deliver everything correctly.
class LossyTest : public ::testing::Test {
 protected:
  LossyTest() {
    ukplat::Wire::Config cfg;
    cfg.drop_rate = 0.02;  // every 50th frame vanishes
    wire_ = std::make_unique<ukplat::Wire>(&clock_, cfg);
    a_ = std::make_unique<Host>(&clock_, wire_.get(), 0, MakeIp(10, 0, 0, 1));
    b_ = std::make_unique<Host>(&clock_, wire_.get(), 1, MakeIp(10, 0, 0, 2));
    // Short virtual RTO so retransmissions trigger quickly; advance the
    // virtual clock manually between polls.
    a_->stack->rto_cycles = 10'000;
    b_->stack->rto_cycles = 10'000;
  }

  ukplat::Clock clock_;
  std::unique_ptr<ukplat::Wire> wire_;
  std::unique_ptr<Host> a_;
  std::unique_ptr<Host> b_;
};

// A hand-rolled endpoint on wire side 1: answers ARP, records every TCP
// segment the host emits, and injects arbitrary crafted segments. This is
// how the teardown/loss regression tests control exactly which ACKs the
// host's TCP state machine observes.
struct RawPeer {
  ukplat::Wire* wire = nullptr;
  uknetdev::MacAddr mac{{0xde, 0xad, 0, 0, 0, 2}};
  uknetdev::MacAddr host_mac;
  Ip4Addr ip = 0;
  Ip4Addr host_ip = 0;

  struct Seg {
    uknet::TcpHeader hdr;  // options parsed into the header fields
    std::vector<std::uint8_t> payload;
    std::vector<std::uint8_t> raw_header;  // base header + raw option bytes

    // Option-area introspection: the raw bytes after the 20-byte base
    // header, exactly as they crossed the wire (byte-exact SYN asserts).
    std::span<const std::uint8_t> OptionBytes() const {
      return std::span(raw_header).subspan(uknet::kTcpHdrBytes);
    }
    bool HasOptions() const { return raw_header.size() > uknet::kTcpHdrBytes; }
  };
  std::vector<Seg> segs;   // every TCP segment seen, in arrival order
  std::uint64_t rsts = 0;  // RSTs among them

  void Poll() {
    using namespace uknet;
    while (auto f = wire->Receive(1)) {
      std::span<const std::uint8_t> frame(*f);
      if (frame.size() < kEthHdrBytes) {
        continue;
      }
      EthHeader eth = EthHeader::Parse(frame);
      auto body = frame.subspan(kEthHdrBytes);
      if (eth.ethertype == kEthTypeArp) {
        auto arp = ArpPacket::Parse(body);
        if (arp.has_value() && arp->oper == 1 && arp->target_ip == ip) {
          ArpPacket reply;
          reply.oper = 2;
          reply.sender_mac = mac;
          reply.sender_ip = ip;
          reply.target_mac = arp->sender_mac;
          reply.target_ip = arp->sender_ip;
          std::vector<std::uint8_t> out(kEthHdrBytes + kArpBytes);
          EthHeader oeth{arp->sender_mac, mac, kEthTypeArp};
          oeth.Serialize(out.data());
          reply.Serialize(out.data() + kEthHdrBytes);
          wire->Send(1, std::move(out));
        }
        continue;
      }
      if (eth.ethertype != kEthTypeIp4) {
        continue;
      }
      auto iph = Ip4Header::Parse(body);
      if (!iph.has_value() || iph->proto != kIpProtoTcp) {
        continue;
      }
      auto seg = body.subspan(iph->header_len, iph->total_len - iph->header_len);
      std::size_t hlen = 0;
      auto tcp = TcpHeader::Parse(seg, iph->src, iph->dst, &hlen);
      if (!tcp.has_value()) {
        continue;
      }
      if ((tcp->flags & kTcpRst) != 0) {
        ++rsts;
      }
      segs.push_back(Seg{*tcp,
                         {seg.begin() + static_cast<std::ptrdiff_t>(hlen),
                          seg.end()},
                         {seg.begin(),
                          seg.begin() + static_cast<std::ptrdiff_t>(hlen)}});
    }
  }

  // Core injector: builds the frame around a fully-specified TcpHeader, so
  // callers control every option byte (the frame is sized to HeaderBytes()).
  void SendTcpHeader(const uknet::TcpHeader& tcp,
                     std::span<const std::uint8_t> payload = {}) {
    using namespace uknet;
    const std::size_t tcp_bytes = tcp.HeaderBytes();
    std::vector<std::uint8_t> frame(kEthHdrBytes + kIp4HdrBytes + tcp_bytes +
                                    payload.size());
    EthHeader eth{host_mac, mac, kEthTypeIp4};
    eth.Serialize(frame.data());
    Ip4Header iph;
    iph.total_len = static_cast<std::uint16_t>(frame.size() - kEthHdrBytes);
    iph.proto = kIpProtoTcp;
    iph.src = ip;
    iph.dst = host_ip;
    iph.Serialize(frame.data() + kEthHdrBytes);
    std::uint8_t* body = frame.data() + kEthHdrBytes + kIp4HdrBytes + tcp_bytes;
    if (!payload.empty()) {
      std::memcpy(body, payload.data(), payload.size());
    }
    tcp.Serialize(frame.data() + kEthHdrBytes + kIp4HdrBytes, ip, host_ip,
                  std::span<const std::uint8_t>(body, payload.size()));
    wire->Send(1, std::move(frame));
  }

  void SendTcp(std::uint16_t src_port, std::uint16_t dst_port, std::uint8_t flags,
               std::uint32_t seq, std::uint32_t ack, std::uint16_t window,
               std::span<const std::uint8_t> payload = {}) {
    uknet::TcpHeader tcp;
    tcp.src_port = src_port;
    tcp.dst_port = dst_port;
    tcp.seq = seq;
    tcp.ack = ack;
    tcp.flags = flags;
    tcp.window = window;
    SendTcpHeader(tcp, payload);
  }

  // Injects a segment carrying handshake options (0 mss / -1 wscale / false
  // sack_permitted = omit that option). Tests drive SYN negotiation with
  // exact option bytes through this.
  void SendTcpWithOptions(std::uint16_t src_port, std::uint16_t dst_port,
                          std::uint8_t flags, std::uint32_t seq,
                          std::uint32_t ack, std::uint16_t window,
                          std::uint16_t mss, std::int8_t wscale,
                          bool sack_permitted,
                          std::span<const std::uint8_t> payload = {}) {
    uknet::TcpHeader tcp;
    tcp.src_port = src_port;
    tcp.dst_port = dst_port;
    tcp.seq = seq;
    tcp.ack = ack;
    tcp.flags = flags;
    tcp.window = window;
    tcp.mss = mss;
    tcp.wscale = wscale;
    tcp.sack_permitted = sack_permitted;
    SendTcpHeader(tcp, payload);
  }

  // Injects an ACK carrying SACK blocks (the scripted receiver side of the
  // sender-scoreboard tests).
  void SendTcpSack(std::uint16_t src_port, std::uint16_t dst_port,
                   std::uint32_t seq, std::uint32_t ack, std::uint16_t window,
                   std::span<const uknet::TcpSackBlock> blocks) {
    uknet::TcpHeader tcp;
    tcp.src_port = src_port;
    tcp.dst_port = dst_port;
    tcp.seq = seq;
    tcp.ack = ack;
    tcp.flags = uknet::kTcpAck;
    tcp.window = window;
    for (const uknet::TcpSackBlock& b : blocks) {
      if (tcp.sack_count >= tcp.sacks.size()) {
        break;
      }
      tcp.sacks[tcp.sack_count++] = b;
    }
    SendTcpHeader(tcp);
  }
};

// Host + RawPeer with ARP pre-resolved and a client-handshake helper.
class RawPeerTest : public ::testing::Test {
 protected:
  RawPeerTest() : wire_(&clock_), host_(&clock_, &wire_, 0, MakeIp(10, 0, 0, 1)) {
    peer_.wire = &wire_;
    peer_.host_mac = host_.nic->mac();
    peer_.ip = MakeIp(10, 0, 0, 2);
    peer_.host_ip = MakeIp(10, 0, 0, 1);
    host_.netif->AddArpEntry(peer_.ip, peer_.mac);
  }

  // One round of host poll + peer drain.
  void Pump(int rounds = 4) {
    for (int i = 0; i < rounds; ++i) {
      host_.stack->Poll();
      peer_.Poll();
    }
  }

  // Drives the client-side handshake against the raw peer and returns the
  // host's ISS (learned from its SYN). The peer uses seq 1000.
  std::uint32_t Handshake(const std::shared_ptr<uknet::TcpSocket>& client,
                          std::uint16_t peer_port) {
    Pump();
    EXPECT_FALSE(peer_.segs.empty());
    EXPECT_EQ(peer_.segs.back().hdr.flags, uknet::kTcpSyn);
    std::uint32_t iss = peer_.segs.back().hdr.seq;
    peer_.SendTcp(peer_port, client->local_port(), uknet::kTcpSyn | uknet::kTcpAck,
                  1000, iss + 1, 65535);
    Pump();
    EXPECT_TRUE(client->connected());
    return iss;
  }

  ukplat::Clock clock_;
  ukplat::Wire wire_;
  Host host_;
  RawPeer peer_;
};

// Host + raw L3 injection: parser hardening through the interface.
class RawRxTest : public ::testing::Test {
 protected:
  RawRxTest() : wire_(&clock_), host_(&clock_, &wire_, 0, MakeIp(10, 0, 0, 1)) {}

  // Wraps |l3| (starting at the IP header) into an Ethernet frame for the host.
  void InjectIp(std::span<const std::uint8_t> l3) {
    using namespace uknet;
    std::vector<std::uint8_t> frame(kEthHdrBytes + l3.size());
    EthHeader eth{host_.nic->mac(), uknetdev::MacAddr{{0xde, 0xad, 0, 0, 0, 2}},
                  kEthTypeIp4};
    eth.Serialize(frame.data());
    std::memcpy(frame.data() + kEthHdrBytes, l3.data(), l3.size());
    wire_.Send(1, std::move(frame));
  }

  ukplat::Clock clock_;
  ukplat::Wire wire_;
  Host host_;
};

}  // namespace netharness

#endif  // TESTS_NET_HARNESS_H_
