// Tests for the storage stack: block devices (ramdisk + virtio-blk over real
// rings), vfscore path resolution and file semantics, ramfs, SHFS.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "shfs/shfs.h"
#include "ukalloc/registry.h"
#include "ukblockdev/ramdisk.h"
#include "ukblockdev/virtio_blk.h"
#include "ukplat/clock.h"
#include "ukplat/memregion.h"
#include "vfscore/blockfs.h"
#include "vfscore/ramfs.h"
#include "vfscore/vfs.h"

namespace {

using namespace ukblockdev;

std::span<const std::byte> AsBytes(std::string_view s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

// ---- block devices ------------------------------------------------------------

class BlockTest : public ::testing::Test {
 protected:
  BlockTest() : mem_(8 << 20) { buf_gpa_ = mem_.Carve(64 * 1024, 512); }
  ukplat::MemRegion mem_;
  ukplat::Clock clock_;
  std::uint64_t buf_gpa_ = 0;
};

TEST_F(BlockTest, RamDiskWriteReadRoundTrip) {
  RamDisk disk(&mem_, /*sectors=*/128);
  const char payload[512] = "sector payload";
  mem_.CopyIn(buf_gpa_, std::as_bytes(std::span(payload)));

  Request wr{Request::Op::kWrite, 5, 1, buf_gpa_};
  ASSERT_EQ(SubmitAndWait(disk, &wr), 0);

  std::uint64_t buf2 = mem_.Carve(512, 512);
  Request rd{Request::Op::kRead, 5, 1, buf2};
  ASSERT_EQ(SubmitAndWait(disk, &rd), 0);
  char readback[512];
  mem_.CopyOut(buf2, std::as_writable_bytes(std::span(readback)));
  EXPECT_STREQ(readback, "sector payload");
}

TEST_F(BlockTest, RamDiskRejectsOutOfRange) {
  RamDisk disk(&mem_, 16);
  Request rd{Request::Op::kRead, 15, 4, buf_gpa_};
  EXPECT_EQ(SubmitAndWait(disk, &rd), ukarch::Raw(ukarch::Status::kInval));
}

TEST_F(BlockTest, CompletionHandlerInvoked) {
  RamDisk disk(&mem_, 16);
  int completions = 0;
  disk.SetCompletionHandler([&](Request* r) { ++completions; });
  Request rd{Request::Op::kRead, 0, 1, buf_gpa_};
  ASSERT_TRUE(disk.Submit(&rd));
  disk.ProcessCompletions(SIZE_MAX);
  EXPECT_EQ(completions, 1);
}

TEST_F(BlockTest, VirtioBlkRoundTripThroughRing) {
  std::uint16_t qsize = 8;
  std::uint64_t ring = mem_.Carve(VirtioBlk::FootprintBytes(qsize), 16);
  VirtioBlk disk(&mem_, &clock_, ring, qsize, /*sectors=*/256);

  char payload[1024];
  std::memset(payload, 0x42, sizeof(payload));
  mem_.CopyIn(buf_gpa_, std::as_bytes(std::span(payload)));
  Request wr{Request::Op::kWrite, 10, 2, buf_gpa_};
  ASSERT_EQ(SubmitAndWait(disk, &wr), 0);
  EXPECT_EQ(disk.backing()[10 * 512], 0x42);
  EXPECT_GE(disk.kicks(), 1u);
  EXPECT_GE(disk.irqs(), 1u);

  std::uint64_t buf2 = mem_.Carve(1024, 512);
  Request rd{Request::Op::kRead, 10, 2, buf2};
  ASSERT_EQ(SubmitAndWait(disk, &rd), 0);
  std::uint8_t readback[1024];
  mem_.CopyOut(buf2, std::as_writable_bytes(std::span(readback)));
  EXPECT_EQ(readback[0], 0x42);
  EXPECT_EQ(readback[1023], 0x42);
}

TEST_F(BlockTest, VirtioBlkOutOfRangeReportsIoError) {
  std::uint16_t qsize = 4;
  std::uint64_t ring = mem_.Carve(VirtioBlk::FootprintBytes(qsize), 16);
  VirtioBlk disk(&mem_, &clock_, ring, qsize, 8);
  Request rd{Request::Op::kRead, 100, 1, buf_gpa_};
  EXPECT_EQ(SubmitAndWait(disk, &rd), ukarch::Raw(ukarch::Status::kIo));
}

TEST_F(BlockTest, VirtioBlkFlush) {
  std::uint16_t qsize = 4;
  std::uint64_t ring = mem_.Carve(VirtioBlk::FootprintBytes(qsize), 16);
  VirtioBlk disk(&mem_, &clock_, ring, qsize, 8);
  Request fl{Request::Op::kFlush, 0, 0, 0};
  EXPECT_EQ(SubmitAndWait(disk, &fl), 0);
}

TEST_F(BlockTest, VirtioBlkChargesExitCosts) {
  std::uint16_t qsize = 4;
  std::uint64_t ring = mem_.Carve(VirtioBlk::FootprintBytes(qsize), 16);
  VirtioBlk disk(&mem_, &clock_, ring, qsize, 64);
  std::uint64_t before = clock_.cycles();
  Request rd{Request::Op::kRead, 0, 1, buf_gpa_};
  SubmitAndWait(disk, &rd);
  EXPECT_GE(clock_.cycles() - before,
            clock_.model().vm_exit + clock_.model().irq_inject);
}

// ---- vfscore + ramfs ------------------------------------------------------------

class VfsTest : public ::testing::Test {
 protected:
  VfsTest() : heap_(new std::byte[kHeap]) {
    alloc_ = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf, heap_.get(), kHeap);
    ramfs_ = std::make_unique<vfscore::RamFs>(alloc_.get());
    EXPECT_TRUE(Ok(vfs_.Mount("/", ramfs_.get())));
  }

  static constexpr std::size_t kHeap = 8 << 20;
  std::unique_ptr<std::byte[]> heap_;
  std::unique_ptr<ukalloc::Allocator> alloc_;
  std::unique_ptr<vfscore::RamFs> ramfs_;
  vfscore::Vfs vfs_;
};

TEST_F(VfsTest, CreateWriteReadFile) {
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs_.Open("/hello.txt", vfscore::kWrite | vfscore::kCreate, &f)));
  EXPECT_EQ(f->Write(AsBytes("hello vfs")), 9);

  std::shared_ptr<vfscore::File> g;
  ASSERT_TRUE(Ok(vfs_.Open("/hello.txt", vfscore::kRead, &g)));
  char buf[64] = {};
  EXPECT_EQ(g->Read(std::as_writable_bytes(std::span(buf))), 9);
  EXPECT_STREQ(buf, "hello vfs");
}

TEST_F(VfsTest, NestedDirectories) {
  ASSERT_TRUE(Ok(vfs_.Mkdir("/a")));
  ASSERT_TRUE(Ok(vfs_.Mkdir("/a/b")));
  ASSERT_TRUE(Ok(vfs_.Mkdir("/a/b/c")));
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs_.Open("/a/b/c/deep.txt", vfscore::kWrite | vfscore::kCreate, &f)));
  f->Write(AsBytes("x"));
  vfscore::NodeStat st;
  ASSERT_TRUE(Ok(vfs_.Stat("/a/b/c/deep.txt", &st)));
  EXPECT_EQ(st.size, 1u);
  EXPECT_EQ(st.type, vfscore::NodeType::kRegular);
}

TEST_F(VfsTest, PathNormalization) {
  ASSERT_TRUE(Ok(vfs_.Mkdir("/dir")));
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs_.Open("//dir/../dir/./f.txt",
                           vfscore::kWrite | vfscore::kCreate, &f)));
  vfscore::NodeStat st;
  EXPECT_TRUE(Ok(vfs_.Stat("/dir/f.txt", &st)));
}

TEST_F(VfsTest, ErrnoSemantics) {
  vfscore::NodeStat st;
  EXPECT_EQ(vfs_.Stat("/missing", &st), ukarch::Status::kNoEnt);
  ASSERT_TRUE(Ok(vfs_.Mkdir("/d")));
  EXPECT_EQ(vfs_.Mkdir("/d"), ukarch::Status::kExist);
  std::shared_ptr<vfscore::File> f;
  EXPECT_EQ(vfs_.Open("/missing", vfscore::kRead, &f), ukarch::Status::kNoEnt);
  // Writing a directory is EISDIR.
  EXPECT_EQ(vfs_.Open("/d", vfscore::kWrite, &f), ukarch::Status::kIsDir);
  // Unlinking a non-empty directory is ENOTEMPTY.
  ASSERT_TRUE(Ok(vfs_.Open("/d/x", vfscore::kWrite | vfscore::kCreate, &f)));
  EXPECT_EQ(vfs_.Unlink("/d"), ukarch::Status::kNotEmpty);
  EXPECT_TRUE(Ok(vfs_.Unlink("/d/x")));
  EXPECT_TRUE(Ok(vfs_.Unlink("/d")));
}

TEST_F(VfsTest, ExclCreateFailsOnExisting) {
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs_.Open("/x", vfscore::kWrite | vfscore::kCreate, &f)));
  std::shared_ptr<vfscore::File> g;
  EXPECT_EQ(vfs_.Open("/x", vfscore::kWrite | vfscore::kCreate | vfscore::kExcl, &g),
            ukarch::Status::kExist);
}

TEST_F(VfsTest, TruncateAndAppend) {
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs_.Open("/t", vfscore::kWrite | vfscore::kCreate, &f)));
  f->Write(AsBytes("0123456789"));
  // O_TRUNC re-open wipes content.
  std::shared_ptr<vfscore::File> g;
  ASSERT_TRUE(Ok(vfs_.Open("/t", vfscore::kWrite | vfscore::kTrunc, &g)));
  vfscore::NodeStat st;
  vfs_.Stat("/t", &st);
  EXPECT_EQ(st.size, 0u);
  // O_APPEND writes at the end regardless of offset.
  std::shared_ptr<vfscore::File> h;
  ASSERT_TRUE(Ok(vfs_.Open("/t", vfscore::kWrite | vfscore::kAppend, &h)));
  h->Write(AsBytes("ab"));
  h->Write(AsBytes("cd"));
  vfs_.Stat("/t", &st);
  EXPECT_EQ(st.size, 4u);
}

TEST_F(VfsTest, SeekWhence) {
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs_.Open("/s", vfscore::kWrite | vfscore::kRead | vfscore::kCreate, &f)));
  f->Write(AsBytes("abcdefgh"));
  EXPECT_EQ(f->Seek(2, vfscore::File::Whence::kSet), 2);
  char c;
  f->Read(std::as_writable_bytes(std::span(&c, 1)));
  EXPECT_EQ(c, 'c');
  EXPECT_EQ(f->Seek(-1, vfscore::File::Whence::kEnd), 7);
  f->Read(std::as_writable_bytes(std::span(&c, 1)));
  EXPECT_EQ(c, 'h');
  EXPECT_EQ(f->Seek(-100, vfscore::File::Whence::kCur),
            ukarch::Raw(ukarch::Status::kInval));
}

TEST_F(VfsTest, LargeFileSpansChunks) {
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs_.Open("/big", vfscore::kWrite | vfscore::kRead | vfscore::kCreate, &f)));
  std::vector<std::byte> data(20000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i % 251);
  }
  EXPECT_EQ(f->Write(std::span<const std::byte>(data)), 20000);
  f->Seek(0, vfscore::File::Whence::kSet);
  std::vector<std::byte> back(20000);
  EXPECT_EQ(f->Read(std::span<std::byte>(back)), 20000);
  EXPECT_EQ(data, back);
  // Sparse read past EOF returns 0.
  EXPECT_EQ(f->Read(std::span<std::byte>(back)), 0);
}

TEST_F(VfsTest, ReadDirLists) {
  vfs_.Mkdir("/dir");
  std::shared_ptr<vfscore::File> f;
  vfs_.Open("/dir/one", vfscore::kWrite | vfscore::kCreate, &f);
  vfs_.Open("/dir/two", vfscore::kWrite | vfscore::kCreate, &f);
  std::vector<vfscore::DirEntry> entries;
  ASSERT_TRUE(Ok(vfs_.ReadDir("/dir", &entries)));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "one");
  EXPECT_EQ(entries[1].name, "two");
}

TEST_F(VfsTest, SecondMountLongestPrefixWins) {
  auto ramfs2 = std::make_unique<vfscore::RamFs>(alloc_.get());
  ASSERT_TRUE(Ok(vfs_.Mkdir("/mnt")));
  ASSERT_TRUE(Ok(vfs_.Mount("/mnt", ramfs2.get())));
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs_.Open("/mnt/inner", vfscore::kWrite | vfscore::kCreate, &f)));
  f->Write(AsBytes("inner fs"));
  // The file lives in ramfs2, not in the root fs's /mnt directory.
  std::vector<vfscore::DirEntry> entries;
  ASSERT_TRUE(Ok(vfs_.ReadDir("/mnt", &entries)));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "inner");
  ASSERT_TRUE(Ok(vfs_.Unmount("/mnt")));
  ASSERT_TRUE(Ok(vfs_.ReadDir("/mnt", &entries)));
  EXPECT_TRUE(entries.empty());
}

TEST_F(VfsTest, FileDataComesFromInstanceHeap) {
  std::uint64_t used_before = alloc_->stats().bytes_in_use;
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs_.Open("/heapfile", vfscore::kWrite | vfscore::kCreate, &f)));
  std::vector<std::byte> data(64 * 1024);
  f->Write(std::span<const std::byte>(data));
  EXPECT_GE(alloc_->stats().bytes_in_use - used_before, 64u * 1024);
  ASSERT_TRUE(Ok(vfs_.Unlink("/heapfile")));
  f.reset();  // last handle drops the node and frees the chunks
  EXPECT_LT(alloc_->stats().bytes_in_use - used_before, 4096u);
}

// ---- SHFS -----------------------------------------------------------------------

TEST(ShfsTest, OpenByNameHitAndMiss) {
  shfs::Shfs::Builder builder;
  builder.Add("index.html", {'h', 'i'});
  builder.Add("logo.png", std::vector<std::uint8_t>(1000, 7));
  auto fs = builder.Build();
  auto hit = fs->Open("index.html");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->data.size(), 2u);
  EXPECT_FALSE(fs->Open("missing.html").has_value());
}

TEST(ShfsTest, ReadChunks) {
  shfs::Shfs::Builder builder;
  std::vector<std::uint8_t> content(10000);
  for (std::size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<std::uint8_t>(i);
  }
  builder.Add("data.bin", content);
  auto fs = builder.Build();
  auto h = fs->Open("data.bin");
  ASSERT_TRUE(h.has_value());
  std::uint8_t buf[256];
  EXPECT_EQ(shfs::Shfs::Read(*h, 5000, std::span(buf)), 256u);
  EXPECT_EQ(buf[0], static_cast<std::uint8_t>(5000));
  // Short read at EOF.
  EXPECT_EQ(shfs::Shfs::Read(*h, 9990, std::span(buf)), 10u);
  EXPECT_EQ(shfs::Shfs::Read(*h, 20000, std::span(buf)), 0u);
}

TEST(ShfsTest, CollisionChainsStayCorrect) {
  // Tiny bucket table forces collisions; lookups must still be exact.
  shfs::Shfs::Builder builder(/*bucket_count=*/2);
  for (int i = 0; i < 50; ++i) {
    std::string name = "file" + std::to_string(i);
    builder.Add(name, {static_cast<std::uint8_t>(i)});
  }
  auto fs = builder.Build();
  EXPECT_GE(fs->MaxChainLength(), 20u);
  for (int i = 0; i < 50; ++i) {
    auto h = fs->Open("file" + std::to_string(i));
    ASSERT_TRUE(h.has_value()) << i;
    EXPECT_EQ(h->data[0], static_cast<std::uint8_t>(i));
  }
  EXPECT_FALSE(fs->Open("file50").has_value());
}

TEST(ShfsTest, VfsAdapterServesSameContent) {
  shfs::Shfs::Builder builder;
  builder.Add("page.html", {'<', 'p', '>'});
  auto volume = builder.Build();
  shfs::ShfsVfsDriver driver(volume.get());
  driver.SetNameIndex({"page.html"});

  vfscore::Vfs vfs;
  ASSERT_TRUE(Ok(vfs.Mount("/", &driver)));
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs.Open("/page.html", vfscore::kRead, &f)));
  char buf[8] = {};
  EXPECT_EQ(f->Read(std::as_writable_bytes(std::span(buf))), 3);
  EXPECT_EQ(buf[0], '<');
  // Read-only: writes are rejected at open or at write.
  std::shared_ptr<vfscore::File> w;
  ASSERT_TRUE(Ok(vfs.Open("/page.html", vfscore::kRead | vfscore::kWrite, &w)));
  EXPECT_LT(w->Write(AsBytes("x")), 0);
}

// ---- blockfs: the writable, durable filesystem over ukblockdev ------------------

class BlockFsTest : public ::testing::Test {
 protected:
  BlockFsTest() : mem_(8 << 20), disk_(&mem_, /*sectors=*/4096) {}

  // Builds a fresh filesystem object over the (persistent) disk and mounts
  // it at /persist — exactly what a reboot does.
  std::unique_ptr<vfscore::BlockFs> MountFresh(vfscore::Vfs* vfs) {
    auto fs = std::make_unique<vfscore::BlockFs>(&disk_, &mem_);
    EXPECT_TRUE(Ok(fs->EnsureFormatted()));
    EXPECT_TRUE(Ok(vfs->Mount("/persist", fs.get())));
    return fs;
  }

  ukplat::MemRegion mem_;
  ukplat::Clock clock_;
  RamDisk disk_;
};

TEST_F(BlockFsTest, FormatMountWriteRead) {
  vfscore::Vfs vfs;
  auto fs = MountFresh(&vfs);
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs.Open("/persist/hello", vfscore::kWrite | vfscore::kCreate, &f)));
  EXPECT_EQ(f->Write(AsBytes("durable bytes")), 13);
  std::shared_ptr<vfscore::File> r;
  ASSERT_TRUE(Ok(vfs.Open("/persist/hello", vfscore::kRead, &r)));
  char buf[32] = {};
  EXPECT_EQ(r->Read(std::as_writable_bytes(std::span(buf))), 13);
  EXPECT_STREQ(buf, "durable bytes");
}

TEST_F(BlockFsTest, DataSurvivesRemountFromFreshObject) {
  {
    vfscore::Vfs vfs;
    auto fs = MountFresh(&vfs);
    std::shared_ptr<vfscore::File> f;
    ASSERT_TRUE(Ok(vfs.Open("/persist/a", vfscore::kWrite | vfscore::kCreate, &f)));
    EXPECT_EQ(f->Write(AsBytes("first life")), 10);
    vfs.Unmount("/persist");
  }
  // New BlockFs object, same disk: the reboot path. EnsureFormatted must NOT
  // reformat, and the file content must come back from the device.
  vfscore::Vfs vfs;
  auto fs = MountFresh(&vfs);
  std::shared_ptr<vfscore::File> r;
  ASSERT_TRUE(Ok(vfs.Open("/persist/a", vfscore::kRead, &r)));
  char buf[16] = {};
  EXPECT_EQ(r->Read(std::as_writable_bytes(std::span(buf))), 10);
  EXPECT_STREQ(buf, "first life");
}

TEST_F(BlockFsTest, LargeFileSpansIndirectBlocks) {
  vfscore::Vfs vfs;
  auto fs = MountFresh(&vfs);
  // > 12 direct blocks (48 KiB) forces the single-indirect pointer path.
  std::string big(80 * 1024, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i % 17));
  }
  {
    std::shared_ptr<vfscore::File> f;
    ASSERT_TRUE(Ok(vfs.Open("/persist/big", vfscore::kWrite | vfscore::kCreate, &f)));
    ASSERT_EQ(f->Write(AsBytes(big)), static_cast<std::int64_t>(big.size()));
    vfs.Unmount("/persist");
  }
  vfscore::Vfs vfs2;
  auto fs2 = MountFresh(&vfs2);
  std::shared_ptr<vfscore::File> r;
  ASSERT_TRUE(Ok(vfs2.Open("/persist/big", vfscore::kRead, &r)));
  std::string back(big.size(), '\0');
  EXPECT_EQ(r->Read(std::as_writable_bytes(std::span(back.data(), back.size()))),
            static_cast<std::int64_t>(big.size()));
  EXPECT_EQ(back, big);
}

TEST_F(BlockFsTest, TruncateFreesAndUnlinkReclaims) {
  vfscore::Vfs vfs;
  auto fs = MountFresh(&vfs);
  const std::uint32_t free_before = fs->free_blocks();
  std::string data(40 * 1024, 'z');
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs.Open("/persist/t", vfscore::kWrite | vfscore::kCreate, &f)));
  ASSERT_EQ(f->Write(AsBytes(data)), static_cast<std::int64_t>(data.size()));
  EXPECT_LT(fs->free_blocks(), free_before);
  ASSERT_TRUE(Ok(f->node().Truncate(100)));
  vfscore::NodeStat st;
  ASSERT_TRUE(Ok(vfs.Stat("/persist/t", &st)));
  EXPECT_EQ(st.size, 100u);
  ASSERT_TRUE(Ok(vfs.Unlink("/persist/t")));
  EXPECT_EQ(fs->free_blocks(), free_before);  // every block reclaimed
}

TEST_F(BlockFsTest, MountRejectsUnformattedDevice) {
  vfscore::BlockFs fs(&disk_, &mem_);
  std::shared_ptr<vfscore::Node> root;
  EXPECT_EQ(fs.Mount(&root), ukarch::Status::kInval);  // no magic yet
}

// ---- Fsync plumbing: vfscore::File::Fsync -> ukblockdev flush op ---------------

TEST_F(BlockFsTest, FsyncIssuesFlushOnRamdisk) {
  vfscore::Vfs vfs;
  auto fs = MountFresh(&vfs);
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs.Open("/persist/f", vfscore::kWrite | vfscore::kCreate, &f)));
  f->Write(AsBytes("x"));
  const std::uint64_t flushes_before = disk_.flushes();
  EXPECT_TRUE(Ok(f->Fsync()));
  // Ramdisk has no volatile cache: the flush is a counted no-op, proving the
  // File -> Node -> BlockFs -> Request::Op::kFlush chain end to end.
  EXPECT_EQ(disk_.flushes(), flushes_before + 1);
}

TEST_F(BlockFsTest, FsyncOnReadOnlyFdIsEbadf) {
  vfscore::Vfs vfs;
  auto fs = MountFresh(&vfs);
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs.Open("/persist/f", vfscore::kWrite | vfscore::kCreate, &f)));
  f->Write(AsBytes("x"));
  std::shared_ptr<vfscore::File> r;
  ASSERT_TRUE(Ok(vfs.Open("/persist/f", vfscore::kRead, &r)));
  const std::uint64_t flushes_before = disk_.flushes();
  EXPECT_EQ(r->Fsync(), ukarch::Status::kBadF);  // POSIX EBADF contract
  EXPECT_EQ(disk_.flushes(), flushes_before);    // and no barrier was issued
}

TEST_F(BlockFsTest, VfsPathFsyncReachesDevice) {
  vfscore::Vfs vfs;
  auto fs = MountFresh(&vfs);
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs.Open("/persist/f", vfscore::kWrite | vfscore::kCreate, &f)));
  f->Write(AsBytes("x"));
  const std::uint64_t flushes_before = disk_.flushes();
  EXPECT_TRUE(Ok(vfs.Fsync("/persist/f")));
  EXPECT_EQ(disk_.flushes(), flushes_before + 1);
  EXPECT_EQ(vfs.Fsync("/persist/missing"), ukarch::Status::kNoEnt);
}

TEST_F(BlockFsTest, RamfsFsyncIsNoOp) {
  // Memory-backed filesystems inherit the no-op: fsync succeeds, nothing to
  // flush below them.
  auto heap = std::make_unique<std::byte[]>(1 << 20);
  auto alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf, heap.get(), 1 << 20);
  vfscore::RamFs ramfs(alloc.get());
  vfscore::Vfs vfs;
  ASSERT_TRUE(Ok(vfs.Mount("/", &ramfs)));
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs.Open("/m", vfscore::kWrite | vfscore::kCreate, &f)));
  f->Write(AsBytes("x"));
  EXPECT_TRUE(Ok(f->Fsync()));
}

TEST_F(BlockFsTest, FsyncOverVirtioBlkIsARealBarrier) {
  std::uint16_t qsize = 8;
  std::uint64_t ring = mem_.Carve(VirtioBlk::FootprintBytes(qsize), 16);
  VirtioBlk vdisk(&mem_, &clock_, ring, qsize, /*sectors=*/4096);
  vfscore::BlockFs fs(&vdisk, &mem_);
  ASSERT_TRUE(Ok(fs.EnsureFormatted()));
  vfscore::Vfs vfs;
  ASSERT_TRUE(Ok(vfs.Mount("/persist", &fs)));
  std::shared_ptr<vfscore::File> f;
  ASSERT_TRUE(Ok(vfs.Open("/persist/f", vfscore::kWrite | vfscore::kCreate, &f)));
  f->Write(AsBytes("x"));
  const std::uint64_t flushes_before = vdisk.flushes();
  const std::uint64_t cycles_before = clock_.cycles();
  EXPECT_TRUE(Ok(f->Fsync()));
  EXPECT_EQ(vdisk.flushes(), flushes_before + 1);
  // On virtio-blk a flush is a modeled write-cache barrier, not free.
  EXPECT_GE(clock_.cycles() - cycles_before, VirtioBlk::kFlushBarrierCycles);
}

}  // namespace
