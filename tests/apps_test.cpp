// Tests for the applications: RESP codec, ukredis end-to-end over the
// testbed, ukhttp, the SQL engine + B+tree, and the UDP kvstore paths.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "apps/btree.h"
#include "apps/http.h"
#include "apps/kvstore.h"
#include "apps/redis.h"
#include "apps/resp.h"
#include "apps/sql.h"
#include "env/testbed.h"
#include "net_harness.h"
#include "ukarch/hash.h"
#include "ukarch/random.h"

namespace {

using namespace apps;

// ---- RESP -------------------------------------------------------------------------

TEST(Resp, ParsesCommand) {
  RespCommandParser p;
  p.Feed("*3\r\n$3\r\nSET\r\n$3\r\nfoo\r\n$3\r\nbar\r\n");
  auto cmd = p.Next();
  ASSERT_TRUE(cmd.has_value());
  ASSERT_EQ(cmd->size(), 3u);
  EXPECT_EQ((*cmd)[0], "SET");
  EXPECT_EQ((*cmd)[2], "bar");
  EXPECT_FALSE(p.Next().has_value());
}

TEST(Resp, HandlesPartialFeed) {
  RespCommandParser p;
  std::string full = "*2\r\n$3\r\nGET\r\n$5\r\nkey:1\r\n";
  for (std::size_t i = 0; i < full.size() - 1; ++i) {
    p.Feed(full.substr(i, 1));
    EXPECT_FALSE(p.Next().has_value()) << i;
  }
  p.Feed(full.substr(full.size() - 1));
  auto cmd = p.Next();
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ((*cmd)[1], "key:1");
}

TEST(Resp, PipelinedCommands) {
  RespCommandParser p;
  p.Feed(RespCommand({"PING"}) + RespCommand({"GET", "a"}) + RespCommand({"PING"}));
  int n = 0;
  while (p.Next().has_value()) {
    ++n;
  }
  EXPECT_EQ(n, 3);
}

TEST(Resp, MalformedSetsError) {
  RespCommandParser p;
  p.Feed("GARBAGE\r\n");
  EXPECT_FALSE(p.Next().has_value());
  EXPECT_TRUE(p.error());
}

TEST(Resp, ConsumeRepliesCountsAllTypes) {
  std::string buf = RespSimpleString("OK") + RespInteger(7) + RespNil() +
                    RespBulk("hello") + RespError("nope");
  EXPECT_EQ(ConsumeReplies(&buf), 5u);
  EXPECT_TRUE(buf.empty());
  // Partial bulk stays buffered.
  buf = "$10\r\nabc";
  EXPECT_EQ(ConsumeReplies(&buf), 0u);
  EXPECT_FALSE(buf.empty());
}

// ---- redis end-to-end ----------------------------------------------------------------

class RedisTest : public ::testing::Test {
 protected:
  RedisTest()
      : bed_(env::Profile::UnikraftKvm()),
        server_(&bed_.api(), bed_.server().alloc.get(), 6379) {
    EXPECT_TRUE(server_.Start());
  }

  void Pump(int rounds = 300) {
    for (int i = 0; i < rounds; ++i) {
      bed_.Poll();
      server_.PumpOnce();
    }
  }

  env::TestBed bed_;
  RedisServer server_;
};

TEST_F(RedisTest, SetGetThroughRealStack) {
  auto sock = bed_.client().stack->TcpConnect(env::TestBed::kServerIp, 6379);
  Pump();
  ASSERT_TRUE(sock->connected());
  std::string cmds = RespCommand({"SET", "k", "v"}) + RespCommand({"GET", "k"}) +
                     RespCommand({"GET", "missing"});
  sock->Send(std::span(reinterpret_cast<const std::uint8_t*>(cmds.data()), cmds.size()));
  Pump();
  std::uint8_t buf[512];
  std::int64_t n = sock->Recv(buf);
  ASSERT_GT(n, 0);
  std::string reply(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n));
  EXPECT_EQ(reply, "+OK\r\n$1\r\nv\r\n$-1\r\n");
  EXPECT_EQ(server_.commands_processed(), 3u);
}

TEST_F(RedisTest, IncrDelExists) {
  auto sock = bed_.client().stack->TcpConnect(env::TestBed::kServerIp, 6379);
  Pump();
  std::string cmds = RespCommand({"INCR", "n"}) + RespCommand({"INCR", "n"}) +
                     RespCommand({"EXISTS", "n"}) + RespCommand({"DEL", "n"}) +
                     RespCommand({"EXISTS", "n"});
  sock->Send(std::span(reinterpret_cast<const std::uint8_t*>(cmds.data()), cmds.size()));
  Pump();
  std::uint8_t buf[512];
  std::int64_t n = sock->Recv(buf);
  std::string reply(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n));
  EXPECT_EQ(reply, ":1\r\n:2\r\n:1\r\n:1\r\n:0\r\n");
}

TEST_F(RedisTest, BenchClientMeasuresThroughput) {
  RedisBenchClient::Config cfg;
  cfg.connections = 4;
  cfg.pipeline = 8;
  cfg.use_set = true;
  RedisBenchClient bench(bed_.client().stack.get(), env::TestBed::kServerIp, 6379, cfg);
  ASSERT_TRUE(bench.ConnectAll([&] {
    bed_.Poll();
    server_.PumpOnce();
  }));
  for (int i = 0; i < 400; ++i) {
    bench.PumpOnce();
    bed_.Poll();
    server_.PumpOnce();
  }
  EXPECT_GT(bench.replies(), 500u);
  // Replies trail commands by at most the in-flight pipeline depth.
  EXPECT_LE(bench.replies(), server_.commands_processed());
  EXPECT_LE(server_.commands_processed() - bench.replies(),
            static_cast<std::uint64_t>(cfg.connections * cfg.pipeline));
}

TEST_F(RedisTest, ValueStoreUsesInstanceAllocator) {
  std::uint64_t used_before = bed_.server().alloc->stats().bytes_in_use;
  auto sock = bed_.client().stack->TcpConnect(env::TestBed::kServerIp, 6379);
  Pump();
  std::string big(4096, 'z');
  std::string cmd = RespCommand({"SET", "big", big});
  sock->Send(std::span(reinterpret_cast<const std::uint8_t*>(cmd.data()), cmd.size()));
  Pump();
  EXPECT_GE(bed_.server().alloc->stats().bytes_in_use, used_before + 4096);
}

// ---- http ------------------------------------------------------------------------------

class HttpTest : public ::testing::Test {
 protected:
  HttpTest() : bed_(env::Profile::UnikraftKvm()) {
    // 612-byte page, like the paper's wrk setup.
    std::shared_ptr<vfscore::File> f;
    EXPECT_TRUE(Ok(bed_.vfs().Open("/index.html", vfscore::kWrite | vfscore::kCreate,
                                   &f)));
    std::string body(612, 'u');
    f->Write(std::as_bytes(std::span(body.data(), body.size())));
  }

  env::TestBed bed_;
};

TEST_F(HttpTest, ParsesRequests) {
  std::string buf = "GET /a HTTP/1.1\r\nHost: x\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  auto r1 = ParseHttpRequest(&buf);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->path, "/a");
  auto r2 = ParseHttpRequest(&buf);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->path, "/b");
  EXPECT_FALSE(ParseHttpRequest(&buf).has_value());
}

TEST_F(HttpTest, ServesStaticFile) {
  HttpServer server(&bed_.api(), 80, &bed_.vfs());
  ASSERT_TRUE(server.Start());
  WrkClient::Config cfg;
  cfg.connections = 2;
  cfg.pipeline = 2;
  WrkClient wrk(bed_.client().stack.get(), env::TestBed::kServerIp, 80, cfg);
  ASSERT_TRUE(wrk.ConnectAll([&] {
    bed_.Poll();
    server.PumpOnce();
  }));
  for (int i = 0; i < 300; ++i) {
    wrk.PumpOnce();
    bed_.Poll();
    server.PumpOnce();
  }
  EXPECT_GT(wrk.responses(), 20u);
  EXPECT_EQ(wrk.responses(), server.requests_served());
}

TEST_F(HttpTest, Returns404ForMissing) {
  HttpServer server(&bed_.api(), 80, &bed_.vfs());
  ASSERT_TRUE(server.Start());
  auto sock = bed_.client().stack->TcpConnect(env::TestBed::kServerIp, 80);
  for (int i = 0; i < 300; ++i) {
    bed_.Poll();
    server.PumpOnce();
  }
  std::string req = "GET /ghost HTTP/1.1\r\n\r\n";
  sock->Send(std::span(reinterpret_cast<const std::uint8_t*>(req.data()), req.size()));
  for (int i = 0; i < 300; ++i) {
    bed_.Poll();
    server.PumpOnce();
  }
  std::uint8_t buf[512];
  std::int64_t n = sock->Recv(buf);
  ASSERT_GT(n, 0);
  EXPECT_NE(std::string(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n))
                .find("404"),
            std::string::npos);
}

TEST_F(HttpTest, ShfsModeServesFromVolume) {
  shfs::Shfs::Builder builder;
  std::string body(612, 's');
  builder.Add("index.html", std::vector<std::uint8_t>(body.begin(), body.end()));
  auto volume = builder.Build();
  HttpServer server(&bed_.api(), 80, volume.get());
  ASSERT_TRUE(server.Start());
  WrkClient::Config cfg;
  cfg.connections = 1;
  cfg.pipeline = 1;
  WrkClient wrk(bed_.client().stack.get(), env::TestBed::kServerIp, 80, cfg);
  ASSERT_TRUE(wrk.ConnectAll([&] {
    bed_.Poll();
    server.PumpOnce();
  }));
  for (int i = 0; i < 200; ++i) {
    wrk.PumpOnce();
    bed_.Poll();
    server.PumpOnce();
  }
  EXPECT_GT(wrk.responses(), 5u);
}

// ---- B+tree -----------------------------------------------------------------------------

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : mem_(new std::byte[kHeap]) {
    alloc_ = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf, mem_.get(), kHeap);
  }
  static constexpr std::size_t kHeap = 32 << 20;
  std::unique_ptr<std::byte[]> mem_;
  std::unique_ptr<ukalloc::Allocator> alloc_;
};

TEST_F(BTreeTest, InsertFindThousands) {
  BTree tree(alloc_.get());
  for (std::int64_t i = 0; i < 5000; ++i) {
    std::int64_t v = i * 31;
    ASSERT_TRUE(tree.Insert(i, std::as_bytes(std::span(&v, 1))));
  }
  EXPECT_EQ(tree.size(), 5000u);
  EXPECT_GT(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants());
  for (std::int64_t i = 0; i < 5000; i += 97) {
    auto payload = tree.Find(i);
    ASSERT_TRUE(payload.has_value()) << i;
    std::int64_t v = 0;
    std::memcpy(&v, payload->data, 8);
    EXPECT_EQ(v, i * 31);
  }
  EXPECT_FALSE(tree.Find(5000).has_value());
  EXPECT_FALSE(tree.Find(-1).has_value());
}

TEST_F(BTreeTest, RandomOrderInsertStaysSorted) {
  BTree tree(alloc_.get());
  ukarch::Xorshift rng(99);
  std::set<std::int64_t> keys;
  while (keys.size() < 2000) {
    auto k = static_cast<std::int64_t>(rng.NextBelow(1'000'000));
    std::int64_t v = k;
    if (keys.insert(k).second) {
      ASSERT_TRUE(tree.Insert(k, std::as_bytes(std::span(&v, 1))));
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
  // Scan returns keys in order.
  std::vector<std::int64_t> scanned;
  tree.Scan(INT64_MIN, INT64_MAX, [&](std::int64_t k, BTree::Payload) {
    scanned.push_back(k);
    return true;
  });
  EXPECT_EQ(scanned.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));
}

TEST_F(BTreeTest, OverwriteAndErase) {
  BTree tree(alloc_.get());
  std::int64_t v1 = 1, v2 = 2;
  tree.Insert(7, std::as_bytes(std::span(&v1, 1)));
  tree.Insert(7, std::as_bytes(std::span(&v2, 1)));
  EXPECT_EQ(tree.size(), 1u);
  std::int64_t got = 0;
  std::memcpy(&got, tree.Find(7)->data, 8);
  EXPECT_EQ(got, 2);
  EXPECT_TRUE(tree.Erase(7));
  EXPECT_FALSE(tree.Erase(7));
  EXPECT_EQ(tree.size(), 0u);
}

TEST_F(BTreeTest, MemoryReturnedOnDestroy) {
  std::uint64_t before = alloc_->stats().bytes_in_use;
  {
    BTree tree(alloc_.get());
    std::int64_t v = 0;
    for (std::int64_t i = 0; i < 1000; ++i) {
      tree.Insert(i, std::as_bytes(std::span(&v, 1)));
    }
    EXPECT_GT(alloc_->stats().bytes_in_use, before);
  }
  EXPECT_EQ(alloc_->stats().bytes_in_use, before);
}

TEST_F(BTreeTest, RangeScanBounds) {
  BTree tree(alloc_.get());
  std::int64_t v = 0;
  for (std::int64_t i = 0; i < 100; ++i) {
    tree.Insert(i * 10, std::as_bytes(std::span(&v, 1)));
  }
  int count = 0;
  tree.Scan(250, 500, [&](std::int64_t k, BTree::Payload) {
    EXPECT_GE(k, 250);
    EXPECT_LE(k, 500);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 26);  // 250..500 inclusive, step 10
}

// ---- SQL --------------------------------------------------------------------------------

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() : mem_(new std::byte[kHeap]) {
    alloc_ = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf, mem_.get(), kHeap);
    db_ = std::make_unique<Database>(alloc_.get());
  }
  static constexpr std::size_t kHeap = 32 << 20;
  std::unique_ptr<std::byte[]> mem_;
  std::unique_ptr<ukalloc::Allocator> alloc_;
  std::unique_ptr<Database> db_;
};

TEST_F(SqlTest, CreateInsertSelect) {
  ASSERT_TRUE(db_->Execute("CREATE TABLE users (id INTEGER, name TEXT)").ok);
  ASSERT_TRUE(db_->Execute("INSERT INTO users VALUES (1, 'ada')").ok);
  ASSERT_TRUE(db_->Execute("INSERT INTO users VALUES (2, 'grace')").ok);
  SqlResult r = db_->Execute("SELECT * FROM users WHERE id = 2");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(r.rows[0].values[1]), "grace");
}

TEST_F(SqlTest, SelectRangeAndProjection) {
  db_->Execute("CREATE TABLE t (k INTEGER, v TEXT)");
  for (int i = 0; i < 50; ++i) {
    std::string stmt = "INSERT INTO t VALUES (" + std::to_string(i) + ", 'row" +
                       std::to_string(i) + "')";
    ASSERT_TRUE(db_->Execute(stmt).ok);
  }
  SqlResult r = db_->Execute("SELECT v FROM t WHERE k < 5");
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0].values.size(), 1u);  // projected
  EXPECT_EQ(std::get<std::string>(r.rows[4].values[0]), "row4");
  r = db_->Execute("SELECT * FROM t WHERE k >= 45");
  EXPECT_EQ(r.rows.size(), 5u);
}

TEST_F(SqlTest, DeleteRows) {
  db_->Execute("CREATE TABLE t (k INTEGER, v TEXT)");
  for (int i = 0; i < 10; ++i) {
    db_->Execute("INSERT INTO t VALUES (" + std::to_string(i) + ", 'x')");
  }
  SqlResult r = db_->Execute("DELETE FROM t WHERE k = 3");
  EXPECT_EQ(r.rows_affected, 1u);
  r = db_->Execute("DELETE FROM t WHERE k >= 7");
  EXPECT_EQ(r.rows_affected, 3u);
  r = db_->Execute("SELECT * FROM t");
  EXPECT_EQ(r.rows.size(), 6u);
}

TEST_F(SqlTest, ErrorsAreReported) {
  EXPECT_FALSE(db_->Execute("DROP TABLE t").ok);
  EXPECT_FALSE(db_->Execute("INSERT INTO missing VALUES (1)").ok);
  db_->Execute("CREATE TABLE t (k INTEGER)");
  EXPECT_FALSE(db_->Execute("INSERT INTO t VALUES (1, 2)").ok);  // count mismatch
  EXPECT_FALSE(db_->Execute("CREATE TABLE t (k INTEGER)").ok);   // duplicate
}

TEST_F(SqlTest, QuotedStringsWithEscapes) {
  db_->Execute("CREATE TABLE q (k INTEGER, s TEXT)");
  ASSERT_TRUE(db_->Execute("INSERT INTO q VALUES (1, 'it''s fine')").ok);
  SqlResult r = db_->Execute("SELECT s FROM q WHERE k = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(r.rows[0].values[0]), "it's fine");
}

TEST_F(SqlTest, TransactionsAreAcceptedNoOps) {
  EXPECT_TRUE(db_->Execute("BEGIN").ok);
  db_->Execute("CREATE TABLE t (k INTEGER)");
  EXPECT_TRUE(db_->Execute("COMMIT").ok);
}

// ---- kvstore ----------------------------------------------------------------------------

class KvTest : public ::testing::Test {
 protected:
  KvTest() : bed_(env::Profile::UnikraftKvm()) {}
  env::TestBed bed_;
};

TEST_F(KvTest, SocketSingleMode) {
  KvServer server(&bed_.api(), 7777, KvMode::kSocketSingle);
  ASSERT_TRUE(server.Start());
  auto client = bed_.client().stack->UdpOpen();
  auto set = EncodeKvRequest({true, 42, "value42"});
  client->SendTo(env::TestBed::kServerIp, 7777, set);
  for (int i = 0; i < 200; ++i) {
    bed_.Poll();
    server.PumpOnce();
  }
  auto get = EncodeKvRequest({false, 42, ""});
  client->SendTo(env::TestBed::kServerIp, 7777, get);
  for (int i = 0; i < 200; ++i) {
    bed_.Poll();
    server.PumpOnce();
  }
  // Two replies: "K" then "value42".
  auto r1 = client->RecvFrom();
  auto r2 = client->RecvFrom();
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(r1->payload[0], 'K');
  EXPECT_EQ(std::string(r2->payload.begin(), r2->payload.end()), "value42");
  EXPECT_EQ(server.requests(), 2u);
}

TEST_F(KvTest, BatchModeUsesOneSyscallPerBatch) {
  KvServer server(&bed_.api(), 7777, KvMode::kSocketBatch);
  ASSERT_TRUE(server.Start());
  auto client = bed_.client().stack->UdpOpen();
  for (int i = 0; i < 16; ++i) {
    client->SendTo(env::TestBed::kServerIp, 7777, EncodeKvRequest({true, 1, "v"}));
    bed_.Poll();
  }
  for (int i = 0; i < 200; ++i) {
    bed_.Poll();
  }
  std::uint64_t calls_before = bed_.api().shim().calls();
  std::size_t handled = server.PumpOnce();
  EXPECT_EQ(handled, 16u);
  // One epoll_wait (the event-loop turn) + recvmmsg + sendmmsg for the whole
  // 16-packet batch: syscall count stays O(1) per batch, not per packet.
  EXPECT_LE(bed_.api().shim().calls() - calls_before, 3u);
}

TEST_F(KvTest, NetdevModeBypassesStackEntirely) {
  // Server drives its own NIC on a dedicated world.
  ukplat::Clock clock;
  ukplat::Wire wire(&clock);
  env::SimHost server_host(&clock, &wire, 0, uknet::MakeIp(10, 0, 0, 1),
                           ukalloc::Backend::kTlsf,
                           uknetdev::VirtioBackend::kVhostUser);
  env::SimHost client_host(&clock, &wire, 1, uknet::MakeIp(10, 0, 0, 2),
                           ukalloc::Backend::kTlsf,
                           uknetdev::VirtioBackend::kVhostUser);
  client_host.netif->AddArpEntry(uknet::MakeIp(10, 0, 0, 1), server_host.nic->mac());

  // The server host's stack must not own the NIC in this mode; build a
  // dedicated KvServer NIC-owner instead. The SimHost already attached the
  // stack, so take the raw device: its RX pool is the stack's. For the
  // specialized path we use a second NIC-free server over the same device
  // is not possible — so this test builds its own host pair manually.
  ukplat::MemRegion mem(32 << 20);
  std::uint64_t heap_gpa = mem.Carve(24 << 20, 4096);
  auto alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                        mem.At(heap_gpa, 24 << 20), 24 << 20);
  ukplat::Wire wire2(&clock);
  uknetdev::VirtioNet::Config nic_cfg;
  nic_cfg.backend = uknetdev::VirtioBackend::kVhostUser;
  nic_cfg.wire_side = 0;
  uknetdev::VirtioNet nic(&mem, &clock, &wire2, nic_cfg);

  KvServer server(&nic, &mem, alloc.get(), uknet::MakeIp(10, 0, 0, 1), 7777,
                  KvMode::kUkNetdev);
  ASSERT_TRUE(server.Start());

  // The specialized path's zero-alloc invariant (Fig 18 gate): replies are
  // written in place in the RX buffer, so the TX pool must never churn.
  netharness::ZeroAllocGuard guard({server.tx_pool()}, alloc.get());

  // Client on side 1 of wire2 with a full stack.
  env::SimHost client2(&clock, &wire2, 1, uknet::MakeIp(10, 0, 0, 2),
                       ukalloc::Backend::kTlsf, uknetdev::VirtioBackend::kVhostUser);
  client2.netif->AddArpEntry(uknet::MakeIp(10, 0, 0, 1), nic.mac());
  auto client = client2.stack->UdpOpen();
  client->SendTo(uknet::MakeIp(10, 0, 0, 1), 7777, EncodeKvRequest({true, 9, "nine"}));
  client2.stack->Poll();
  for (int i = 0; i < 200; ++i) {
    server.PumpOnce();
    client2.stack->Poll();
  }
  client->SendTo(uknet::MakeIp(10, 0, 0, 1), 7777, EncodeKvRequest({false, 9, ""}));
  for (int i = 0; i < 200; ++i) {
    server.PumpOnce();
    client2.stack->Poll();
  }
  EXPECT_EQ(server.requests(), 2u);
  auto r1 = client->RecvFrom();
  auto r2 = client->RecvFrom();
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(std::string(r2->payload.begin(), r2->payload.end()), "nine");
  guard.ExpectPoolFlat("kvstore uknetdev in-place replies");
}

// Multi-queue kvstore: a 2-queue server pumps each queue independently;
// every flow is answered from the queue it hashed to, replies stay correct,
// and the in-place reply path keeps both TX pools at zero churn.
TEST_F(KvTest, NetdevModeShardsFlowsAcrossQueues) {
  ukplat::Clock clock;
  ukplat::MemRegion mem(32 << 20);
  std::uint64_t heap_gpa = mem.Carve(24 << 20, 4096);
  auto alloc = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf,
                                        mem.At(heap_gpa, 24 << 20), 24 << 20);
  ukplat::Wire wire2(&clock);
  uknetdev::VirtioNet::Config nic_cfg;
  nic_cfg.backend = uknetdev::VirtioBackend::kVhostUser;
  nic_cfg.wire_side = 0;
  uknetdev::VirtioNet nic(&mem, &clock, &wire2, nic_cfg);

  KvServer server(&nic, &mem, alloc.get(), uknet::MakeIp(10, 0, 0, 1), 7777,
                  KvMode::kUkNetdev, /*queues=*/2);
  ASSERT_TRUE(server.Start());
  ASSERT_EQ(server.queue_count(), 2);
  netharness::ZeroAllocGuard guard({server.tx_pool(0), server.tx_pool(1)},
                                   alloc.get());

  env::SimHost client2(&clock, &wire2, 1, uknet::MakeIp(10, 0, 0, 2),
                       ukalloc::Backend::kTlsf, uknetdev::VirtioBackend::kVhostUser);
  client2.netif->AddArpEntry(uknet::MakeIp(10, 0, 0, 1), nic.mac());

  // One client socket per server queue (by the shared symmetric flow hash).
  std::shared_ptr<uknet::UdpSocket> flow[2];
  while (flow[0] == nullptr || flow[1] == nullptr) {
    auto c = client2.stack->UdpOpen();
    std::uint16_t q = static_cast<std::uint16_t>(
        ukarch::FlowHash4(uknet::MakeIp(10, 0, 0, 2), c->local_port(),
                          uknet::MakeIp(10, 0, 0, 1), 7777) %
        2);
    if (flow[q] == nullptr) {
      flow[q] = std::move(c);
    }
  }
  // Shard-aligned keys: each flow asks for keys its own queue owns, so the
  // whole request stays inside one loop (the zero-alloc fast path).
  auto key_for = [](std::uint16_t q) {
    std::uint16_t k = 0;
    while (KvServer::ShardForKey(k, 2) != q) {
      ++k;
    }
    return k;
  };
  for (std::uint16_t q = 0; q < 2; ++q) {
    std::string v = q == 0 ? "zero" : "one";
    flow[q]->SendTo(uknet::MakeIp(10, 0, 0, 1), 7777,
                    EncodeKvRequest({true, key_for(q), v}));
    flow[q]->SendTo(uknet::MakeIp(10, 0, 0, 1), 7777,
                    EncodeKvRequest({false, key_for(q), ""}));
  }
  // One event loop per queue, round-robined by the single test thread.
  for (int i = 0; i < 200; ++i) {
    client2.stack->Poll();
    server.PumpQueue(0);
    server.PumpQueue(1);
  }
  EXPECT_EQ(server.requests(), 4u);
  EXPECT_EQ(server.queue_requests(0), 2u);
  EXPECT_EQ(server.queue_requests(1), 2u);
  auto a1 = flow[0]->RecvFrom();
  auto a2 = flow[0]->RecvFrom();
  ASSERT_TRUE(a1 && a2);
  EXPECT_EQ(std::string(a2->payload.begin(), a2->payload.end()), "zero");
  auto b1 = flow[1]->RecvFrom();
  auto b2 = flow[1]->RecvFrom();
  ASSERT_TRUE(b1 && b2);
  EXPECT_EQ(std::string(b2->payload.begin(), b2->payload.end()), "one");
  guard.ExpectPoolFlat("2-queue kvstore in-place replies");
  // Shared-nothing audit: with shard-aligned traffic neither loop ever
  // touched the other's store (and no ring traffic was needed).
  EXPECT_EQ(server.shard_accesses(0, 1), 0u);
  EXPECT_EQ(server.shard_accesses(1, 0), 0u);
  EXPECT_EQ(server.ring_messages(), 0u);
}

}  // namespace
