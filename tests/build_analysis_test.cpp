// Tests for ukbuild (closure/DCE/LTO/dep graphs), uklibc porting resolution
// (Table 2), and the analysis module (Figs 1, 5, 6, 7).
#include <gtest/gtest.h>

#include "analysis/linux_depgraph.h"
#include "analysis/porting_survey.h"
#include "analysis/syscall_study.h"
#include "posix/syscalls.h"
#include "ukbuild/linker.h"
#include "uklibc/porting.h"

namespace {

using namespace ukbuild;

class BuildTest : public ::testing::Test {
 protected:
  BuildTest() : registry_(Registry::Default()), linker_(&registry_) {}
  Registry registry_;
  Linker linker_;
};

TEST_F(BuildTest, HelloClosureIsTiny) {
  Config cfg;
  cfg.app = "helloworld";
  auto closure = linker_.ResolveClosure(cfg);
  // Fig 3: helloworld pulls boot, alloc API, argparse, nolibc, plat — no
  // scheduler, no network stack, no VFS.
  EXPECT_LE(closure.size(), 8u);
  EXPECT_TRUE(std::find(closure.begin(), closure.end(), "nolibc") != closure.end());
  EXPECT_TRUE(std::find(closure.begin(), closure.end(), "lwip") == closure.end());
  EXPECT_TRUE(std::find(closure.begin(), closure.end(), "vfscore") == closure.end());
  EXPECT_TRUE(std::find(closure.begin(), closure.end(), "uksched") == closure.end());
}

TEST_F(BuildTest, NginxClosurePullsStackNotBlock) {
  Config cfg;
  cfg.app = "nginx";
  auto closure = linker_.ResolveClosure(cfg);
  auto has = [&closure](const char* n) {
    return std::find(closure.begin(), closure.end(), n) != closure.end();
  };
  EXPECT_TRUE(has("lwip"));
  EXPECT_TRUE(has("vfscore"));
  EXPECT_TRUE(has("ramfs"));
  // Fig 2 note: "this image does not include a block subsystem since it only
  // uses RamFS".
  EXPECT_FALSE(has("ukblkdev"));
  EXPECT_FALSE(has("virtio-blk"));
}

TEST_F(BuildTest, ImageSizesMatchFig8Shape) {
  auto size_of = [&](const char* app, bool dce, bool lto) {
    Config cfg;
    cfg.app = app;
    cfg.dce = dce;
    cfg.lto = lto;
    return linker_.Link(cfg).total_bytes;
  };
  // Helloworld ~200 KB on KVM (paper: "a minimal Hello World configuration
  // yields an image of 200KB in size on KVM").
  std::uint64_t hello = size_of("helloworld", false, false);
  EXPECT_GT(hello, 60u * 1024);
  EXPECT_LT(hello, 400u * 1024);
  // All app images stay under 2 MB (Fig 8 headline).
  EXPECT_LT(size_of("nginx", false, false), 2u << 20);
  EXPECT_LT(size_of("redis", false, false), 2u << 20);
  EXPECT_LT(size_of("sqlite", false, false), 2u << 20);
  // DCE helps more than LTO; both never hurt.
  std::uint64_t nginx = size_of("nginx", false, false);
  std::uint64_t nginx_lto = size_of("nginx", false, true);
  std::uint64_t nginx_dce = size_of("nginx", true, false);
  std::uint64_t nginx_both = size_of("nginx", true, true);
  EXPECT_LT(nginx_lto, nginx);
  EXPECT_LT(nginx_dce, nginx_lto);
  EXPECT_LE(nginx_both, nginx_dce);
}

TEST_F(BuildTest, XenHelloSmallerThanKvm) {
  Config kvm;
  kvm.app = "helloworld";
  kvm.platform = Platform::kKvm;
  Config xen = kvm;
  xen.platform = Platform::kXen;
  EXPECT_LT(linker_.Link(xen).total_bytes, linker_.Link(kvm).total_bytes);
}

TEST_F(BuildTest, DceDropsUnusedObjects) {
  Config cfg;
  cfg.app = "redis";
  cfg.dce = true;
  Image image = linker_.Link(cfg);
  const LinkedLib* redis = image.FindLib("app-redis");
  ASSERT_NE(redis, nullptr);
  // cluster/lua/persistence objects are not in the feature set.
  EXPECT_GE(redis->objects_dropped, 3u);
  EXPECT_LT(redis->bytes_after, redis->bytes_before);
}

TEST_F(BuildTest, DepGraphsMatchPaperScale) {
  Config hello;
  hello.app = "helloworld";
  DepGraph hello_graph = linker_.Graph(hello);
  Config nginx;
  nginx.app = "nginx";
  DepGraph nginx_graph = linker_.Graph(nginx);
  // Fig 3 vs Fig 2: hello graph is much smaller, both are tiny vs Linux.
  EXPECT_LT(hello_graph.EdgeCount(), nginx_graph.EdgeCount());
  EXPECT_LT(nginx_graph.EdgeCount(), 64u);
  EXPECT_NE(hello_graph.ToDot().find("digraph"), std::string::npos);
}

TEST_F(BuildTest, UnknownAppYieldsEmpty) {
  Config cfg;
  cfg.app = "doom";
  EXPECT_TRUE(linker_.ResolveClosure(cfg).empty());
  EXPECT_TRUE(linker_.Link(cfg).libs.empty());
}

// ---- Table 2 ----------------------------------------------------------------------------

TEST(Porting, MuslCompatLinksEverything) {
  uklibc::LibcProfile musl_compat{uklibc::Libc::kMusl, true};
  for (const auto& lib : uklibc::Table2Libraries()) {
    auto r = uklibc::Resolve(lib, musl_compat);
    EXPECT_TRUE(r.success) << lib.name << " missing: "
                           << (r.missing_symbols.empty() ? ""
                                                         : r.missing_symbols[0]);
  }
}

TEST(Porting, MuslStdMatchesTable2Pattern) {
  uklibc::LibcProfile musl_std{uklibc::Libc::kMusl, false};
  int successes = 0;
  for (const auto& lib : uklibc::Table2Libraries()) {
    if (uklibc::Resolve(lib, musl_std).success) {
      ++successes;
    }
  }
  // Table 2: 11 of 24 build with plain musl.
  EXPECT_EQ(successes, 11);
  // Spot-check the paper's ✓/✗ cells.
  auto find = [](const char* name) {
    for (const auto& lib : uklibc::Table2Libraries()) {
      if (lib.name == name) {
        return lib;
      }
    }
    return uklibc::LibraryManifest{};
  };
  EXPECT_TRUE(uklibc::Resolve(find("lib-helloworld"), musl_std).success);
  EXPECT_TRUE(uklibc::Resolve(find("lib-duktape"), musl_std).success);
  EXPECT_FALSE(uklibc::Resolve(find("lib-nginx"), musl_std).success);
  EXPECT_FALSE(uklibc::Resolve(find("lib-openssl"), musl_std).success);
  EXPECT_FALSE(uklibc::Resolve(find("lib-sqlite"), musl_std).success);
}

TEST(Porting, NewlibStdMostlyFails) {
  uklibc::LibcProfile newlib_std{uklibc::Libc::kNewlib, false};
  int successes = 0;
  for (const auto& lib : uklibc::Table2Libraries()) {
    if (uklibc::Resolve(lib, newlib_std).success) {
      ++successes;
    }
  }
  // Table 2: only farmhash, helloworld, libunwind, open62541 build.
  EXPECT_EQ(successes, 4);
  uklibc::LibcProfile newlib_compat{uklibc::Libc::kNewlib, true};
  for (const auto& lib : uklibc::Table2Libraries()) {
    EXPECT_TRUE(uklibc::Resolve(lib, newlib_compat).success) << lib.name;
  }
}

TEST(Porting, GlueLocIsSmall) {
  // §4.2: manual porting needs only a few lines of glue code.
  for (const auto& lib : uklibc::Table2Libraries()) {
    EXPECT_LE(lib.glue_loc, 40);
  }
}

// ---- analysis ---------------------------------------------------------------------------

TEST(LinuxGraph, DenseAndHeavy) {
  const analysis::ComponentGraph& g = analysis::LinuxKernelGraph();
  EXPECT_EQ(g.components.size(), 12u);
  EXPECT_GT(g.EdgePairs(), 50u);
  EXPECT_GT(g.TotalCalls(), 4000u);
  // Fig 1's point: the graph is dense (most component pairs depend on each
  // other), so removal is "a daunting task".
  EXPECT_GT(g.Density(), 0.4);
  // sched is the most coupled component.
  EXPECT_GT(g.Coupling("sched"), g.Coupling("ipc"));
}

TEST(LinuxGraph, OrdersOfMagnitudeDenserThanUnikraft) {
  Registry registry = Registry::Default();
  Linker linker(&registry);
  Config cfg;
  cfg.app = "nginx";
  DepGraph nginx = linker.Graph(cfg);
  EXPECT_GT(analysis::LinuxKernelGraph().TotalCalls(),
            100 * static_cast<std::uint64_t>(nginx.EdgeCount()));
}

TEST(SyscallStudy, ThirtyAppsWithPlausibleSets) {
  const auto& apps = analysis::Top30ServerApps();
  ASSERT_EQ(apps.size(), 30u);
  for (const auto& app : apps) {
    EXPECT_GT(app.required.size(), 40u) << app.app;
    EXPECT_LT(app.required.size(), 180u) << app.app;
  }
}

TEST(SyscallStudy, MoreThanHalfTheSyscallSpaceUnused) {
  auto demand = analysis::DemandCounts();
  int unneeded = 0;
  for (int nr = 0; nr <= posix::kMaxSyscallNr; ++nr) {
    if (!demand.contains(nr)) {
      ++unneeded;
    }
  }
  // §4.1: "more than half the syscalls are not even needed".
  EXPECT_GT(unneeded, posix::kMaxSyscallNr / 2);
}

TEST(SyscallStudy, SupportIsHighAndTop10Helps) {
  auto rows = analysis::ComputeSupport(posix::SupportedSyscalls());
  ASSERT_EQ(rows.size(), 30u);
  double min_pct = 100.0;
  for (const auto& row : rows) {
    EXPECT_GE(row.with_top5_pct, row.supported_pct);
    EXPECT_GE(row.with_top10_pct, row.with_top5_pct);
    min_pct = std::min(min_pct, row.supported_pct);
  }
  // Fig 7: "all applications are close to having full support".
  EXPECT_GT(min_pct, 60.0);
  // And several already fully covered improving with top-10.
  double avg = 0;
  for (const auto& row : rows) {
    avg += row.with_top10_pct;
  }
  EXPECT_GT(avg / 30.0, 85.0);
}

TEST(SyscallStudy, TopMissingAreDemandOrdered) {
  auto missing = analysis::TopMissing(posix::SupportedSyscalls(), 10);
  EXPECT_EQ(missing.size(), 10u);
  auto demand = analysis::DemandCounts();
  for (std::size_t i = 1; i < missing.size(); ++i) {
    EXPECT_GE(demand[missing[i - 1]], demand[missing[i]]);
  }
}

TEST(PortingSurvey, EffortDeclinesAcrossQuarters) {
  auto rows = analysis::SimulatePortingTimeline();
  ASSERT_EQ(rows.size(), 4u);
  // Fig 6's shape: total effort drops steeply as the base matures.
  EXPECT_GT(rows[0].Total(), rows[1].Total());
  EXPECT_GT(rows[1].Total(), rows[2].Total());
  EXPECT_GE(rows[2].Total(), rows[3].Total());
  // OS-primitive work disappears entirely by the last quarter.
  EXPECT_GT(rows[0].os_primitive_days, 0.0);
  EXPECT_EQ(rows[3].os_primitive_days, 0.0);
  EXPECT_EQ(rows[3].build_primitive_days, 0.0);
}

}  // namespace
