// Tests for uksched (cooperative/preemptive threads) and uklock primitives.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ukalloc/registry.h"
#include "uklock/lock.h"
#include "uksched/scheduler.h"
#include "uksched/thread_scheduler.h"
#include "ukplat/clock.h"

namespace {

using namespace uksched;

class SchedTest : public ::testing::Test {
 protected:
  SchedTest() : mem_(new std::byte[kHeap]) {
    alloc_ = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf, mem_.get(), kHeap);
  }

  static constexpr std::size_t kHeap = 8 << 20;
  std::unique_ptr<std::byte[]> mem_;
  std::unique_ptr<ukalloc::Allocator> alloc_;
  ukplat::Clock clock_;
};

TEST_F(SchedTest, RunsSingleThreadToCompletion) {
  CoopScheduler sched(alloc_.get(), &clock_);
  bool ran = false;
  ASSERT_NE(sched.CreateThread("t", [&] { ran = true; }), nullptr);
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_TRUE(ran);
}

TEST_F(SchedTest, CooperativeYieldInterleaves) {
  CoopScheduler sched(alloc_.get(), &clock_);
  std::string trace;
  sched.CreateThread("a", [&] {
    trace += 'a';
    sched.Yield();
    trace += 'A';
  });
  sched.CreateThread("b", [&] {
    trace += 'b';
    sched.Yield();
    trace += 'B';
  });
  sched.Run();
  EXPECT_EQ(trace, "abAB");
}

TEST_F(SchedTest, CoopNeverPreempts) {
  CoopScheduler sched(alloc_.get(), &clock_);
  std::string trace;
  sched.CreateThread("a", [&] {
    for (int i = 0; i < 5; ++i) {
      clock_.Charge(1'000'000);
      sched.PreemptPoint();  // must be a no-op under ukcoop
      trace += 'a';
    }
  });
  sched.CreateThread("b", [&] { trace += 'b'; });
  sched.Run();
  EXPECT_EQ(trace, "aaaaab");
  EXPECT_EQ(sched.stats().preemptions, 0u);
}

TEST_F(SchedTest, PreemptiveForcesRoundRobin) {
  PreemptScheduler sched(alloc_.get(), &clock_, /*quantum_cycles=*/1000);
  std::string trace;
  auto worker = [&](char c) {
    return [&trace, c, this, &sched] {
      for (int i = 0; i < 3; ++i) {
        trace += c;
        clock_.Charge(2000);     // exceed the quantum
        sched.PreemptPoint();    // kernel-entry point
      }
    };
  };
  sched.CreateThread("a", worker('a'));
  sched.CreateThread("b", worker('b'));
  sched.Run();
  EXPECT_EQ(trace, "ababab");
  EXPECT_GE(sched.stats().preemptions, 4u);
}

TEST_F(SchedTest, WaitQueueBlocksUntilWoken) {
  CoopScheduler sched(alloc_.get(), &clock_);
  WaitQueue wq(&sched);
  std::string trace;
  sched.CreateThread("waiter", [&] {
    trace += 'w';
    wq.Wait();
    trace += 'W';
  });
  sched.CreateThread("waker", [&] {
    trace += 'k';
    wq.Wake();
  });
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_EQ(trace, "wkW");
}

TEST_F(SchedTest, WaitTimeoutExpiresAndAdvancesClock) {
  CoopScheduler sched(alloc_.get(), &clock_);
  WaitQueue wq(&sched);
  constexpr std::uint64_t kDeadline = 750'000;
  bool woken = true;
  sched.CreateThread("sleeper", [&] { woken = wq.WaitTimeout(kDeadline); });
  EXPECT_EQ(sched.Run(), 0u);  // the timeout unblocks it: no leftovers
  EXPECT_FALSE(woken);
  // Idle halt: the clock jumped straight to the deadline, no busy loop.
  EXPECT_GE(clock_.cycles(), kDeadline);
  EXPECT_EQ(sched.stats().idle_advances, 1u);
  EXPECT_TRUE(wq.empty()) << "timed-out thread still parked on the queue";
}

TEST_F(SchedTest, WakeBeforeDeadlineReturnsTrue) {
  CoopScheduler sched(alloc_.get(), &clock_);
  WaitQueue wq(&sched);
  bool woken = false;
  sched.CreateThread("sleeper", [&] { woken = wq.WaitTimeout(1'000'000'000); });
  sched.CreateThread("waker", [&] { EXPECT_EQ(wq.Wake(), 1u); });
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_TRUE(woken);
  // Nothing ever went idle, so the clock never jumped to the far deadline.
  EXPECT_LT(clock_.cycles(), 1'000'000'000u);
  EXPECT_EQ(sched.stats().idle_advances, 0u);
}

TEST_F(SchedTest, SleepersWakeInDeadlineOrder) {
  CoopScheduler sched(alloc_.get(), &clock_);
  WaitQueue wq_a(&sched);
  WaitQueue wq_b(&sched);
  std::vector<std::uint64_t> wake_cycles;
  sched.CreateThread("late", [&] {
    wq_a.WaitTimeout(600'000);
    wake_cycles.push_back(clock_.cycles());
  });
  sched.CreateThread("early", [&] {
    wq_b.WaitTimeout(200'000);
    wake_cycles.push_back(clock_.cycles());
  });
  EXPECT_EQ(sched.Run(), 0u);
  ASSERT_EQ(wake_cycles.size(), 2u);
  // "early" (deadline 200k) fires first even though it blocked second.
  EXPECT_GE(wake_cycles[0], 200'000u);
  EXPECT_LT(wake_cycles[0], 600'000u);
  EXPECT_GE(wake_cycles[1], 600'000u);
  EXPECT_EQ(sched.stats().idle_advances, 2u);
}

TEST_F(SchedTest, RunReportsBlockedThreads) {
  CoopScheduler sched(alloc_.get(), &clock_);
  WaitQueue wq(&sched);
  sched.CreateThread("stuck", [&] { wq.Wait(); });
  EXPECT_EQ(sched.Run(), 1u);  // one thread still blocked
  wq.Wake();
  EXPECT_EQ(sched.Run(), 0u);
}

TEST_F(SchedTest, ManyThreadsAllComplete) {
  CoopScheduler sched(alloc_.get(), &clock_);
  int done = 0;
  for (int i = 0; i < 50; ++i) {
    ASSERT_NE(sched.CreateThread("t" + std::to_string(i),
                                 [&done, &sched] {
                                   sched.Yield();
                                   ++done;
                                 }),
              nullptr);
  }
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_EQ(done, 50);
  EXPECT_EQ(sched.stats().threads_created, 50u);
}

TEST_F(SchedTest, StackAllocationFailureReturnsNull) {
  // Tiny heap: thread creation must fail cleanly, not crash.
  auto tiny_mem = std::make_unique<std::byte[]>(16 * 1024);
  auto tiny = ukalloc::CreateAllocator(ukalloc::Backend::kTlsf, tiny_mem.get(), 16 * 1024);
  ukplat::Clock clk;
  CoopScheduler sched(tiny.get(), &clk);
  EXPECT_EQ(sched.CreateThread("big", [] {}, 1 << 20), nullptr);
}

TEST_F(SchedTest, StacksRecycledAfterExit) {
  CoopScheduler sched(alloc_.get(), &clock_);
  // Sequential waves of threads must not exhaust an 8 MB heap with 64 KB
  // stacks if stacks are reclaimed (>128 would otherwise fail).
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 40; ++i) {
      ASSERT_NE(sched.CreateThread("w", [] {}), nullptr) << "wave " << wave;
    }
    EXPECT_EQ(sched.Run(), 0u);
  }
}

TEST_F(SchedTest, ThreadsSeeOwnStacks) {
  CoopScheduler sched(alloc_.get(), &clock_);
  std::vector<int> results(4, 0);
  for (int i = 0; i < 4; ++i) {
    sched.CreateThread("calc", [&results, i, &sched] {
      int local[128];
      for (int j = 0; j < 128; ++j) {
        local[j] = i * 1000 + j;
      }
      sched.Yield();  // let others scribble on their stacks
      int sum = 0;
      for (int j = 0; j < 128; ++j) {
        sum += local[j] - i * 1000 - j;
      }
      results[static_cast<std::size_t>(i)] = sum == 0 ? 1 : -1;
    });
  }
  sched.Run();
  for (int r : results) {
    EXPECT_EQ(r, 1);
  }
}

// ---- uklock -----------------------------------------------------------------

TEST_F(SchedTest, MutexProvidesMutualExclusion) {
  CoopScheduler sched(alloc_.get(), &clock_);
  uklock::Mutex mutex(uklock::Config{.threading = true}, &sched);
  std::string trace;
  sched.CreateThread("a", [&] {
    uklock::MutexGuard g(mutex);
    trace += '(';
    sched.Yield();  // b runs and must block on the mutex
    trace += ')';
  });
  sched.CreateThread("b", [&] {
    uklock::MutexGuard g(mutex);
    trace += '[';
    trace += ']';
  });
  sched.Run();
  EXPECT_EQ(trace, "()[]");
  EXPECT_GE(mutex.contended_acquires(), 1u);
}

TEST_F(SchedTest, MutexTryLock) {
  CoopScheduler sched(alloc_.get(), &clock_);
  uklock::Mutex mutex(uklock::Config{.threading = true}, &sched);
  EXPECT_TRUE(mutex.TryLock());
  EXPECT_FALSE(mutex.TryLock());
  mutex.Unlock();
  EXPECT_TRUE(mutex.TryLock());
  mutex.Unlock();
}

TEST_F(SchedTest, NoThreadingMutexCompilesToBookkeeping) {
  uklock::Mutex mutex(uklock::Config{.threading = false}, nullptr);
  mutex.Lock();
  EXPECT_TRUE(mutex.locked());
  mutex.Unlock();
  EXPECT_FALSE(mutex.locked());
  EXPECT_EQ(mutex.contended_acquires(), 0u);
}

TEST_F(SchedTest, SemaphoreProducerConsumer) {
  CoopScheduler sched(alloc_.get(), &clock_);
  uklock::Semaphore items(uklock::Config{.threading = true}, &sched, 0);
  std::vector<int> consumed;
  sched.CreateThread("consumer", [&] {
    for (int i = 0; i < 3; ++i) {
      items.Down();
      consumed.push_back(i);
    }
  });
  sched.CreateThread("producer", [&] {
    for (int i = 0; i < 3; ++i) {
      items.Up();
      sched.Yield();
    }
  });
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_EQ(consumed.size(), 3u);
  EXPECT_EQ(items.count(), 0);
}

TEST_F(SchedTest, SemaphoreTryDown) {
  CoopScheduler sched(alloc_.get(), &clock_);
  uklock::Semaphore sem(uklock::Config{.threading = true}, &sched, 1);
  EXPECT_TRUE(sem.TryDown());
  EXPECT_FALSE(sem.TryDown());
  sem.Up();
  EXPECT_TRUE(sem.TryDown());
}

// ---- WaitTimeoutUnless (both backends) --------------------------------------------

TEST_F(SchedTest, WaitTimeoutUnlessSkipsParkWhenSeqAlreadyMoved) {
  CoopScheduler sched(alloc_.get(), &clock_);
  WaitQueue wq(&sched);
  std::atomic<std::uint64_t> seq{0};
  bool woken = false;
  sched.CreateThread("reader", [&] {
    seq.fetch_add(1, std::memory_order_release);  // doorbell already rung
    woken = wq.WaitTimeoutUnless(seq, /*last_seen=*/0, Scheduler::kNoDeadline);
  });
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_TRUE(woken);  // never parked: the seq check under the lock fired
  EXPECT_EQ(sched.stats().idle_advances, 0u);
}

TEST_F(SchedTest, WaitTimeoutUnlessParksWhenSeqUnchanged) {
  CoopScheduler sched(alloc_.get(), &clock_);
  WaitQueue wq(&sched);
  std::atomic<std::uint64_t> seq{7};
  bool woken = true;
  sched.CreateThread("reader",
                     [&] { woken = wq.WaitTimeoutUnless(seq, 7, 500'000); });
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_FALSE(woken);  // parked and timed out like a plain WaitTimeout
  EXPECT_GE(clock_.cycles(), 500'000u);
}

// ---- ThreadScheduler: the same contracts on real OS threads -----------------------

TEST_F(SchedTest, RealThreadsYieldInterleavesFifo) {
  ThreadScheduler sched(alloc_.get(), &clock_);
  std::string trace;
  sched.CreateThread("a", [&] {
    trace += 'a';
    sched.Yield();
    trace += 'A';
  });
  sched.CreateThread("b", [&] {
    trace += 'b';
    sched.Yield();
    trace += 'B';
  });
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_EQ(trace, "abAB");  // identical interleaving to the fiber backend
}

TEST_F(SchedTest, RealThreadsWaitQueueBlocksUntilWoken) {
  ThreadScheduler sched(alloc_.get(), &clock_);
  WaitQueue wq(&sched);
  std::string trace;
  sched.CreateThread("waiter", [&] {
    trace += 'w';
    wq.Wait();
    trace += 'W';
  });
  sched.CreateThread("waker", [&] {
    trace += 'k';
    wq.Wake();
  });
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_EQ(trace, "wkW");
}

TEST_F(SchedTest, RealThreadsTimedWaitStillJumpsVirtualClock) {
  ThreadScheduler::Config cfg;
  cfg.idle_grace = std::chrono::microseconds(100);  // keep the test fast
  ThreadScheduler sched(alloc_.get(), &clock_, cfg);
  WaitQueue wq(&sched);
  constexpr std::uint64_t kDeadline = 750'000;
  bool woken = true;
  sched.CreateThread("sleeper", [&] { woken = wq.WaitTimeout(kDeadline); });
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_FALSE(woken);
  EXPECT_GE(clock_.cycles(), kDeadline);
  EXPECT_EQ(sched.stats().idle_advances, 1u);
}

TEST_F(SchedTest, RealThreadsExternalWakeLandsWhileIdle) {
  // A foreign OS thread (device backend, producer shard) rings a doorbell
  // while every managed thread is parked: the idle dispatcher must hold the
  // world in real time long enough for the Wake to land, like an interrupt
  // ending a HLT.
  ThreadScheduler sched(alloc_.get(), &clock_);
  WaitQueue wq(&sched);
  bool woken = false;
  sched.CreateThread("sleeper", [&] {
    wq.Wait();
    woken = true;
  });
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    wq.Wake();
  });
  EXPECT_EQ(sched.Run(), 0u);  // not stuck: the external wake unblocked it
  producer.join();
  EXPECT_TRUE(woken);
}

TEST_F(SchedTest, RealThreadsNoLostDoorbellFromForeignProducer) {
  // Publish-then-wake from a raw std::thread against WaitTimeoutUnless: every
  // published item is consumed, no wake is lost to the check-then-park race.
  ThreadScheduler sched(alloc_.get(), &clock_);
  WaitQueue wq(&sched);
  std::atomic<std::uint64_t> seq{0};
  std::atomic<int> published{0};
  constexpr int kItems = 64;
  int consumed = 0;
  sched.CreateThread("consumer", [&] {
    std::uint64_t seen = 0;
    while (consumed < kItems) {
      wq.WaitTimeoutUnless(seq, seen, Scheduler::kNoDeadline);
      seen = seq.load(std::memory_order_acquire);
      consumed = published.load(std::memory_order_acquire);
    }
  });
  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) {
      published.store(i, std::memory_order_release);
      seq.fetch_add(1, std::memory_order_release);
      wq.Wake();
      if (i % 8 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  });
  EXPECT_EQ(sched.Run(), 0u);
  producer.join();
  EXPECT_EQ(consumed, kItems);
}

TEST_F(SchedTest, RealThreadsReportBlockedAndDetachAtTeardown) {
  ThreadScheduler::Config cfg;
  cfg.idle_grace = std::chrono::microseconds(100);
  cfg.idle_strike_limit = 3;  // give up on the stuck thread quickly
  auto sched = std::make_unique<ThreadScheduler>(alloc_.get(), &clock_, cfg);
  WaitQueue wq(sched.get());
  sched->CreateThread("stuck", [&] { wq.Wait(); });
  EXPECT_EQ(sched->Run(), 1u);  // reported, exactly like the fiber backend
  sched.reset();  // dtor detaches the parked thread; must not hang or crash
}

TEST_F(SchedTest, RealThreadsManyThreadsAllComplete) {
  ThreadScheduler sched(alloc_.get(), &clock_);
  int done = 0;
  for (int i = 0; i < 32; ++i) {
    sched.CreateThread("worker", [&] {
      sched.Yield();
      ++done;
    });
  }
  EXPECT_EQ(sched.Run(), 0u);
  EXPECT_EQ(done, 32);
}

TEST_F(SchedTest, FactorySelectsBackendFromEnvironment) {
  auto sched = MakeScheduler(alloc_.get(), &clock_);
  ASSERT_NE(sched, nullptr);
  EXPECT_EQ(sched->real_threads(), RealThreadsRequested());
}

}  // namespace
